package pipeline

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"nde/internal/frame"
)

// Inspection observes the output of every pipeline node during Run.
// Inspections implement the mlinspect idea of instrumenting a pipeline
// without changing its code: distribution histograms, row counts and null
// statistics are collected as the data flows by.
type Inspection interface {
	// Observe is called once per executed node with its result.
	Observe(n *Node, res *Result)
}

// RowCountInspection records the output row count of every node.
type RowCountInspection struct {
	Counts map[int]int // node id -> rows
}

// NewRowCountInspection returns an empty row-count inspection.
func NewRowCountInspection() *RowCountInspection {
	return &RowCountInspection{Counts: make(map[int]int)}
}

// Observe records the node's output row count.
func (i *RowCountInspection) Observe(n *Node, res *Result) {
	i.Counts[n.id] = res.Frame.NumRows()
}

// NullCountInspection records per-node, per-column null counts.
type NullCountInspection struct {
	Nulls map[int]map[string]int // node id -> column -> nulls
}

// NewNullCountInspection returns an empty null-count inspection.
func NewNullCountInspection() *NullCountInspection {
	return &NullCountInspection{Nulls: make(map[int]map[string]int)}
}

// Observe tallies nulls per column of the node's output.
func (i *NullCountInspection) Observe(n *Node, res *Result) {
	cols := make(map[string]int)
	for _, name := range res.Frame.ColumnNames() {
		cols[name] = res.Frame.MustColumn(name).NullCount()
	}
	i.Nulls[n.id] = cols
}

// GroupDistributionInspection tracks the relative frequency of the values
// of one column (typically a protected attribute) after every operator —
// the "data distribution debugging" of Grafberger et al. A large change in
// the distribution across an operator indicates that the operator
// disproportionately drops one group.
type GroupDistributionInspection struct {
	Column string
	Dists  map[int]map[string]float64 // node id -> value -> fraction
}

// NewGroupDistributionInspection tracks the distribution of column col.
func NewGroupDistributionInspection(col string) *GroupDistributionInspection {
	return &GroupDistributionInspection{Column: col, Dists: make(map[int]map[string]float64)}
}

// Observe snapshots the column's value distribution if present.
func (i *GroupDistributionInspection) Observe(n *Node, res *Result) {
	col, err := res.Frame.Column(i.Column)
	if err != nil {
		return // column not in scope at this operator
	}
	dist := make(map[string]float64)
	total := 0
	for r := 0; r < col.Len(); r++ {
		if col.IsNull(r) {
			continue
		}
		dist[col.Value(r).String()]++
		total++
	}
	for k := range dist {
		dist[k] /= float64(max(1, total))
	}
	i.Dists[n.id] = dist
}

// MaxShift returns the largest total-variation distance between the
// column's distribution at any operator and at any of its direct inputs,
// together with the node where it happens. It answers "which operator
// skewed the groups the most?".
func (i *GroupDistributionInspection) MaxShift(p *Pipeline, out *Node) (float64, *Node) {
	var worst float64
	var worstNode *Node
	seen := make(map[int]bool)
	var walk func(n *Node)
	walk = func(n *Node) {
		if seen[n.id] {
			return
		}
		seen[n.id] = true
		for _, in := range n.inputs {
			walk(in)
			a, okA := i.Dists[in.id]
			b, okB := i.Dists[n.id]
			if !okA || !okB {
				continue
			}
			if tv := totalVariation(a, b); tv > worst {
				worst, worstNode = tv, n
			}
		}
	}
	walk(out)
	return worst, worstNode
}

func totalVariation(a, b map[string]float64) float64 {
	seen := make(map[string]bool, len(a)+len(b))
	keys := make([]string, 0, len(a)+len(b))
	for k := range a {
		if !seen[k] {
			seen[k] = true
			keys = append(keys, k)
		}
	}
	for k := range b {
		if !seen[k] {
			seen[k] = true
			keys = append(keys, k)
		}
	}
	// Sum in sorted key order: float rounding is order-sensitive, and map
	// iteration order would make the distance vary run to run.
	sort.Strings(keys)
	sum := 0.0
	for _, k := range keys {
		sum += math.Abs(a[k] - b[k])
	}
	return sum / 2
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// ScreeningIssue is one finding of a pipeline screening check, in the
// spirit of ArgusEyes' continuous-integration screening.
type ScreeningIssue struct {
	Check    string
	Severity string // "warning" or "error"
	Detail   string
}

func (s ScreeningIssue) String() string {
	return fmt.Sprintf("[%s] %s: %s", s.Severity, s.Check, s.Detail)
}

// ScreenLeakage detects train/test leakage: rows of the test frame whose
// values on the key columns also appear in the training frame. Any overlap
// is reported as an error, since leaked test rows inflate evaluation
// metrics.
func ScreenLeakage(train, test *frame.Frame, keyCols []string) ([]ScreeningIssue, error) {
	keyOf := func(f *frame.Frame, row int) (string, error) {
		var parts []string
		for _, c := range keyCols {
			v, err := f.Value(row, c)
			if err != nil {
				return "", err
			}
			parts = append(parts, v.String())
		}
		return strings.Join(parts, "\x1f"), nil
	}
	seen := make(map[string]bool, train.NumRows())
	for r := 0; r < train.NumRows(); r++ {
		k, err := keyOf(train, r)
		if err != nil {
			return nil, err
		}
		seen[k] = true
	}
	overlap := 0
	for r := 0; r < test.NumRows(); r++ {
		k, err := keyOf(test, r)
		if err != nil {
			return nil, err
		}
		if seen[k] {
			overlap++
		}
	}
	if overlap == 0 {
		return nil, nil
	}
	return []ScreeningIssue{{
		Check:    "data-leakage",
		Severity: "error",
		Detail:   fmt.Sprintf("%d of %d test rows share keys %v with training rows", overlap, test.NumRows(), keyCols),
	}}, nil
}

// ScreenLabelShift compares the label distribution of two frames and warns
// when the total-variation distance exceeds threshold (e.g. a filter that
// dropped mostly positive examples).
func ScreenLabelShift(before, after *frame.Frame, labelCol string, threshold float64) ([]ScreeningIssue, error) {
	distOf := func(f *frame.Frame) (map[string]float64, error) {
		col, err := f.Column(labelCol)
		if err != nil {
			return nil, err
		}
		d := make(map[string]float64)
		n := 0
		for r := 0; r < col.Len(); r++ {
			if col.IsNull(r) {
				continue
			}
			d[col.Value(r).String()]++
			n++
		}
		for k := range d {
			d[k] /= float64(max(1, n))
		}
		return d, nil
	}
	a, err := distOf(before)
	if err != nil {
		return nil, err
	}
	b, err := distOf(after)
	if err != nil {
		return nil, err
	}
	if tv := totalVariation(a, b); tv > threshold {
		return []ScreeningIssue{{
			Check:    "label-shift",
			Severity: "warning",
			Detail:   fmt.Sprintf("label distribution of %q shifted by TV=%.3f (threshold %.3f)", labelCol, tv, threshold),
		}}, nil
	}
	return nil, nil
}

// ScreenGroupCoverage warns about protected-attribute groups whose support
// in the frame falls below minCount — groups too small for the model to
// learn or for fairness metrics to be reliable.
func ScreenGroupCoverage(f *frame.Frame, groupCol string, minCount int) ([]ScreeningIssue, error) {
	col, err := f.Column(groupCol)
	if err != nil {
		return nil, err
	}
	counts := make(map[string]int)
	for r := 0; r < col.Len(); r++ {
		if col.IsNull(r) {
			continue
		}
		counts[col.Value(r).String()]++
	}
	var small []string
	for g, c := range counts {
		if c < minCount {
			small = append(small, fmt.Sprintf("%s(%d)", g, c))
		}
	}
	if len(small) == 0 {
		return nil, nil
	}
	sort.Strings(small)
	return []ScreeningIssue{{
		Check:    "group-coverage",
		Severity: "warning",
		Detail:   fmt.Sprintf("groups of %q below min support %d: %s", groupCol, minCount, strings.Join(small, ", ")),
	}}, nil
}
