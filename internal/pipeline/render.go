package pipeline

import (
	"fmt"
	"strings"
	"time"
)

// RenderPlan renders the query plan rooted at out as an indented tree, with
// the output operator first — the textual analogue of the plan
// visualization in the tutorial's Figure 3.
func (p *Pipeline) RenderPlan(out *Node) string {
	var b strings.Builder
	seen := make(map[int]bool)
	var walk func(n *Node, depth int)
	walk = func(n *Node, depth int) {
		indent := strings.Repeat("  ", depth)
		if seen[n.id] {
			fmt.Fprintf(&b, "%s%s (shared, node %d)\n", indent, n.label, n.id)
			return
		}
		seen[n.id] = true
		fmt.Fprintf(&b, "%s%s\n", indent, n.label)
		for _, in := range n.inputs {
			walk(in, depth+1)
		}
	}
	walk(out, 0)
	return strings.TrimRight(b.String(), "\n")
}

// RenderPlanWithCosts renders the query plan like RenderPlan, annotating
// each operator with its cost from the most recent stats-collecting run:
// rows in/out, self wall time, and memo reuse for shared sub-plans. Nodes
// without stats (never executed, or stats collection off) render plain.
func (p *Pipeline) RenderPlanWithCosts(out *Node) string {
	rs := p.LastRunStats()
	var b strings.Builder
	seen := make(map[int]bool)
	var walk func(n *Node, depth int)
	walk = func(n *Node, depth int) {
		indent := strings.Repeat("  ", depth)
		if seen[n.id] {
			fmt.Fprintf(&b, "%s%s (shared, node %d)\n", indent, n.label, n.id)
			return
		}
		seen[n.id] = true
		fmt.Fprintf(&b, "%s%s%s\n", indent, n.label, costSuffix(rs, n.id))
		for _, in := range n.inputs {
			walk(in, depth+1)
		}
	}
	walk(out, 0)
	return strings.TrimRight(b.String(), "\n")
}

func costSuffix(rs *RunStats, id int) string {
	if rs == nil {
		return ""
	}
	st, ok := rs.Nodes[id]
	if !ok {
		return ""
	}
	suffix := fmt.Sprintf("  [%d→%d rows, %s", st.RowsIn, st.RowsOut, st.Wall.Round(time.Microsecond))
	if st.MemoHits > 0 {
		suffix += fmt.Sprintf(", reused ×%d", st.MemoHits)
	}
	return suffix + "]"
}

// Dot renders the plan as a Graphviz digraph for external visualization.
func (p *Pipeline) Dot(out *Node) string {
	var b strings.Builder
	b.WriteString("digraph pipeline {\n  rankdir=BT;\n")
	seen := make(map[int]bool)
	var walk func(n *Node)
	walk = func(n *Node) {
		if seen[n.id] {
			return
		}
		seen[n.id] = true
		fmt.Fprintf(&b, "  n%d [label=%q];\n", n.id, n.label)
		for _, in := range n.inputs {
			walk(in)
			fmt.Fprintf(&b, "  n%d -> n%d;\n", in.id, n.id)
		}
	}
	walk(out)
	b.WriteString("}")
	return b.String()
}
