package pipeline

import (
	"fmt"
	"sort"

	"nde/internal/encode"
	"nde/internal/ml"
	"nde/internal/prov"
)

// Featurized is the terminal output of a preprocessing pipeline: a model-
// ready dataset whose rows still carry the provenance polynomials linking
// them back to the pipeline's source tuples.
type Featurized struct {
	Data         *ml.Dataset
	Prov         []prov.Polynomial
	FeatureNames []string
	LabelNames   []string // label index -> original label string
}

// Featurize encodes a pipeline result into a training dataset. The label
// column is mapped to consecutive integers in sorted order of its distinct
// rendered values (so "negative" -> 0, "positive" -> 1 for a binary
// sentiment task). Rows with a null label are rejected. An optional groups
// column attaches protected-group values for fairness metrics ("" = none).
func Featurize(res *Result, ct *encode.ColumnTransformer, labelCol, groupsCol string) (*Featurized, error) {
	x, err := ct.FitTransform(res.Frame)
	if err != nil {
		return nil, err
	}
	labels, err := res.Frame.Column(labelCol)
	if err != nil {
		return nil, err
	}
	distinct := make(map[string]bool)
	for i := 0; i < labels.Len(); i++ {
		if labels.IsNull(i) {
			return nil, fmt.Errorf("pipeline: null label at row %d of column %q", i, labelCol)
		}
		distinct[labels.Value(i).String()] = true
	}
	names := make([]string, 0, len(distinct))
	for s := range distinct {
		names = append(names, s)
	}
	sort.Strings(names)
	index := make(map[string]int, len(names))
	for i, s := range names {
		index[s] = i
	}
	y := make([]int, labels.Len())
	for i := 0; i < labels.Len(); i++ {
		y[i] = index[labels.Value(i).String()]
	}
	d, err := ml.NewDataset(x, y)
	if err != nil {
		return nil, err
	}
	if groupsCol != "" {
		gcol, err := res.Frame.Column(groupsCol)
		if err != nil {
			return nil, err
		}
		groups := make([]string, gcol.Len())
		for i := range groups {
			if !gcol.IsNull(i) {
				groups[i] = gcol.Value(i).String()
			}
		}
		if d, err = d.WithGroups(groups); err != nil {
			return nil, err
		}
	}
	return &Featurized{Data: d, Prov: res.Prov, FeatureNames: ct.FeatureNames(), LabelNames: names}, nil
}

// SourceRows returns, for every output row, the source tuples it depends on
// within the named table (its which-provenance restricted to that table).
func (f *Featurized) SourceRows(table string) [][]int {
	out := make([][]int, len(f.Prov))
	for i, p := range f.Prov {
		for _, v := range p.Vars() {
			if v.Table == table {
				out[i] = append(out[i], v.Row)
			}
		}
	}
	return out
}

// OutputsOf inverts SourceRows: for each row index of the named source
// table, the list of output rows whose provenance mentions it.
func (f *Featurized) OutputsOf(table string, tableRows int) [][]int {
	out := make([][]int, tableRows)
	for o, p := range f.Prov {
		for _, v := range p.Vars() {
			if v.Table == table && v.Row < tableRows {
				out[v.Row] = append(out[v.Row], o)
			}
		}
	}
	return out
}
