package pipeline

import (
	"fmt"
	"math"

	"nde/internal/ml"
	"nde/internal/obs"
	"nde/internal/par"
	"nde/internal/prov"
)

// This file implements data-centric what-if analysis (Grafberger, Groth,
// Schelter; SIGMOD 2023): answering many "what would the model quality be
// if these source tuples were gone?" questions WITHOUT re-running the
// pipeline per variant. Because every featurized output row carries its
// provenance polynomial, a removal variant reduces to a boolean filter over
// the already-computed feature matrix — orders of magnitude cheaper than
// replaying joins, filters and encoders.

// RemovalVariant is one intervention: drop the given source tuples.
type RemovalVariant struct {
	Name   string
	Remove []prov.TupleID
}

// WhatIfResult pairs a variant with the metric after retraining on the
// surviving output rows. A variant that removes every surviving output row
// is reported with Surviving == 0 and Metric == NaN (there is no model to
// evaluate) instead of failing the whole batch; check with math.IsNaN
// before aggregating.
type WhatIfResult struct {
	Name      string
	Metric    float64
	Surviving int
}

// WhatIfRemovals evaluates every removal variant against a featurized
// pipeline output: for each variant it selects the output rows whose
// provenance survives the removal, retrains a fresh model, and reports the
// metric. Correctness relies on the provenance contract verified in the
// pipeline tests (polynomial evaluation ≡ pipeline replay): the results
// equal full replays at a fraction of the cost.
//
// Variants are evaluated concurrently on the shared worker pool (every
// variant's filter → subset → retrain → evaluate chain is independent);
// this is WhatIfRemovalsParallel with the automatic worker count. newModel
// must be safe to call from concurrent goroutines — returning a fresh
// classifier per call, as every existing factory does, is sufficient.
func WhatIfRemovals(ft *Featurized, variants []RemovalVariant, newModel func() ml.Classifier, valid *ml.Dataset) ([]WhatIfResult, error) {
	return WhatIfRemovalsParallel(ft, variants, newModel, valid, 0)
}

// WhatIfRemovalsParallel is WhatIfRemovals with an explicit worker count
// (<= 0 = GOMAXPROCS). Results are reduced in variant order, so the output
// — including which error is reported when several variants fail — is
// bit-for-bit identical for any worker count, including 1.
func WhatIfRemovalsParallel(ft *Featurized, variants []RemovalVariant, newModel func() ml.Classifier, valid *ml.Dataset, workers int) ([]WhatIfResult, error) {
	if newModel == nil {
		return nil, fmt.Errorf("pipeline: WhatIfRemovals needs a model factory")
	}
	sp := obs.StartSpan("pipeline.whatif")
	sp.SetInt("variants", int64(len(variants))).
		SetInt("workers", int64(par.Workers(workers, len(variants))))
	defer sp.End()

	out := make([]WhatIfResult, len(variants))
	_, err := par.ForErr("pipeline.whatif", workers, len(variants), func(_, i int) error {
		vsp := sp.StartChild("pipeline.whatif.variant")
		vsp.SetStr("name", variants[i].Name)
		defer vsp.End()
		res, err := evalRemovalVariant(ft, variants[i], newModel, valid)
		if err != nil {
			return fmt.Errorf("pipeline: what-if variant %q: %w", variants[i].Name, err)
		}
		out[i] = res
		vsp.SetInt("surviving", int64(res.Surviving))
		return nil
	})
	obs.Count("whatif_variants_total", int64(len(variants)))
	if err != nil {
		return nil, err
	}
	return out, nil
}

// evalRemovalVariant runs one variant's filter → subset → retrain →
// evaluate chain. It touches only its arguments and freshly allocated
// state, which is what makes the variant fan-out safe.
func evalRemovalVariant(ft *Featurized, v RemovalVariant, newModel func() ml.Classifier, valid *ml.Dataset) (WhatIfResult, error) {
	removed := make(map[prov.TupleID]bool, len(v.Remove))
	for _, id := range v.Remove {
		removed[id] = true
	}
	var keep []int
	for o, p := range ft.Prov {
		if p.EvalBool(func(id prov.TupleID) bool { return !removed[id] }) {
			keep = append(keep, o)
		}
	}
	if len(keep) == 0 {
		// the variant removed every surviving output row: report the
		// documented NaN sentinel rather than failing the whole batch
		return WhatIfResult{Name: v.Name, Metric: math.NaN(), Surviving: 0}, nil
	}
	subset := ft.Data.Subset(keep)
	metric, err := ml.EvaluateAccuracy(newModel(), subset, valid)
	if err != nil {
		return WhatIfResult{}, err
	}
	return WhatIfResult{Name: v.Name, Metric: metric, Surviving: len(keep)}, nil
}

// CompareWithReplay runs a removal variant both ways — via the provenance
// shortcut and via a full pipeline replay + featurize — and returns both
// metrics. Used by tests and benchmarks to validate and quantify the
// optimization.
func CompareWithReplay(
	p *Pipeline,
	outNode *Node,
	ft *Featurized,
	variant RemovalVariant,
	featurize func(*Result) (*ml.Dataset, error),
	newModel func() ml.Classifier,
	valid *ml.Dataset,
) (fast, slow float64, err error) {
	fastRes, err := WhatIfRemovals(ft, []RemovalVariant{variant}, newModel, valid)
	if err != nil {
		return 0, 0, err
	}
	fast = fastRes[0].Metric

	removed := make(map[prov.TupleID]bool, len(variant.Remove))
	for _, id := range variant.Remove {
		removed[id] = true
	}
	replayed, err := p.Replay(outNode, func(id prov.TupleID) bool { return removed[id] })
	if err != nil {
		return 0, 0, err
	}
	train, err := featurize(replayed)
	if err != nil {
		return 0, 0, err
	}
	slow, err = ml.EvaluateAccuracy(newModel(), train, valid)
	if err != nil {
		return 0, 0, err
	}
	return fast, slow, nil
}
