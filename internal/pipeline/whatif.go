package pipeline

import (
	"fmt"
	"math"

	"nde/internal/ml"
	"nde/internal/obs"
	"nde/internal/par"
	"nde/internal/prov"
)

// This file implements data-centric what-if analysis (Grafberger, Groth,
// Schelter; SIGMOD 2023): answering many "what would the model quality be
// if these source tuples were gone?" questions WITHOUT re-running the
// pipeline per variant. Because every featurized output row carries its
// provenance polynomial, a removal variant reduces to a boolean filter over
// the already-computed feature matrix — orders of magnitude cheaper than
// replaying joins, filters and encoders.

// RemovalVariant is one intervention: drop the given source tuples.
type RemovalVariant struct {
	Name   string
	Remove []prov.TupleID
}

// WhatIfResult pairs a variant with the metric after retraining on the
// surviving output rows. A variant that removes every surviving output row
// is reported with Surviving == 0 and Metric == NaN (there is no model to
// evaluate) instead of failing the whole batch; check with math.IsNaN
// before aggregating.
type WhatIfResult struct {
	Name      string
	Metric    float64
	Surviving int
}

// WhatIfRemovals evaluates every removal variant against a featurized
// pipeline output: for each variant it selects the output rows whose
// provenance survives the removal, retrains a fresh model, and reports the
// metric. Correctness relies on the provenance contract verified in the
// pipeline tests (polynomial evaluation ≡ pipeline replay): the results
// equal full replays at a fraction of the cost.
//
// Variants are evaluated concurrently on the shared worker pool (every
// variant's filter → subset → retrain → evaluate chain is independent);
// this is WhatIfRemovalsParallel with the automatic worker count. newModel
// must be safe to call from concurrent goroutines — returning a fresh
// classifier per call, as every existing factory does, is sufficient.
func WhatIfRemovals(ft *Featurized, variants []RemovalVariant, newModel func() ml.Classifier, valid *ml.Dataset) ([]WhatIfResult, error) {
	return WhatIfRemovalsParallel(ft, variants, newModel, valid, 0)
}

// WhatIfRemovalsParallel is WhatIfRemovals with an explicit worker count
// (<= 0 = GOMAXPROCS). Results are reduced in variant order, so the output
// — including which error is reported when several variants fail — is
// bit-for-bit identical for any worker count, including 1.
func WhatIfRemovalsParallel(ft *Featurized, variants []RemovalVariant, newModel func() ml.Classifier, valid *ml.Dataset, workers int) ([]WhatIfResult, error) {
	return WhatIfRemovalsConfig(ft, variants, newModel, valid, WhatIfConfig{Workers: workers})
}

// WhatIfConfig tunes WhatIfRemovalsConfig.
type WhatIfConfig struct {
	// Workers bounds the variant fan-out (<= 0 = GOMAXPROCS).
	Workers int
	// ForceRebuild disables the kNN delta fast path: every variant rebuilds
	// its neighbor index over the surviving rows from scratch. This is the
	// determinism oracle — results are bit-for-bit identical to the delta
	// path (asserted in tests), it just does the O(n·d·q) work per variant
	// the delta path skips.
	ForceRebuild bool
}

// WhatIfRemovalsConfig is the fully configurable what-if evaluator. When
// the model factory produces a *ml.KNN (the default debugging model), each
// removal variant is answered by DERIVING an index from one shared base
// over the full featurized data (ml.NeighborIndex.RemoveRows): the
// query×train distances are computed once, and every variant costs an
// O(queries·k) top-k repair instead of a fresh distance matrix + retrain.
// Non-kNN factories use the generic retrain path unchanged.
func WhatIfRemovalsConfig(ft *Featurized, variants []RemovalVariant, newModel func() ml.Classifier, valid *ml.Dataset, cfg WhatIfConfig) ([]WhatIfResult, error) {
	if newModel == nil {
		return nil, fmt.Errorf("pipeline: WhatIfRemovals needs a model factory")
	}
	workers := cfg.Workers
	sp := obs.StartSpan("pipeline.whatif")
	sp.SetInt("variants", int64(len(variants))).
		SetInt("workers", int64(par.Workers(workers, len(variants))))
	defer sp.End()

	knnK := 0
	if knn, ok := newModel().(*ml.KNN); ok && knn.K >= 1 {
		knnK = knn.K
	}
	var base *ml.NeighborIndex
	if knnK > 0 && !cfg.ForceRebuild && ft.Data.Len() > 0 {
		// One shared base index over the unmodified featurized data; each
		// variant derives from it. A build failure (e.g. non-finite features
		// a caller slipped past featurization) falls back to the generic
		// retrain path, which reports the same condition per variant.
		if ix, err := ml.NewNeighborIndex(ft.Data, valid, workers); err == nil {
			base = ix
			base.PredictBatch(knnK) // warm distances + top-k before the fan-out
		}
	}

	out := make([]WhatIfResult, len(variants))
	_, err := par.ForErr("pipeline.whatif", workers, len(variants), func(_, i int) error {
		vsp := sp.StartChild("pipeline.whatif.variant")
		vsp.SetStr("name", variants[i].Name)
		defer vsp.End()
		var res WhatIfResult
		var err error
		if knnK > 0 && (base != nil || cfg.ForceRebuild) {
			res, err = evalRemovalVariantKNN(ft, variants[i], base, knnK, valid)
		} else {
			res, err = evalRemovalVariant(ft, variants[i], newModel, valid)
		}
		if err != nil {
			return fmt.Errorf("pipeline: what-if variant %q: %w", variants[i].Name, err)
		}
		out[i] = res
		vsp.SetInt("surviving", int64(res.Surviving))
		return nil
	})
	obs.Count("whatif_variants_total", int64(len(variants)))
	if base != nil {
		obs.Count("whatif_delta_variants_total", int64(len(variants)))
	}
	if err != nil {
		return nil, err
	}
	return out, nil
}

// evalRemovalVariant runs one variant's filter → subset → retrain →
// evaluate chain. It touches only its arguments and freshly allocated
// state, which is what makes the variant fan-out safe.
func evalRemovalVariant(ft *Featurized, v RemovalVariant, newModel func() ml.Classifier, valid *ml.Dataset) (WhatIfResult, error) {
	removed := make(map[prov.TupleID]bool, len(v.Remove))
	for _, id := range v.Remove {
		removed[id] = true
	}
	var keep []int
	for o, p := range ft.Prov {
		if p.EvalBool(func(id prov.TupleID) bool { return !removed[id] }) {
			keep = append(keep, o)
		}
	}
	if len(keep) == 0 {
		// the variant removed every surviving output row: report the
		// documented NaN sentinel rather than failing the whole batch
		return WhatIfResult{Name: v.Name, Metric: math.NaN(), Surviving: 0}, nil
	}
	subset := ft.Data.Subset(keep)
	metric, err := ml.EvaluateAccuracy(newModel(), subset, valid)
	if err != nil {
		return WhatIfResult{}, err
	}
	return WhatIfResult{Name: v.Name, Metric: metric, Surviving: len(keep)}, nil
}

// evalRemovalVariantKNN answers one variant for a kNN model from neighbor
// indexes. With a base index it derives the variant's index via RemoveRows
// — no fresh distance kernel; with base == nil (the ForceRebuild oracle) it
// builds the variant's index from scratch. Both arms classify through the
// same exact top-k machinery, so their metrics are bit-for-bit identical.
func evalRemovalVariantKNN(ft *Featurized, v RemovalVariant, base *ml.NeighborIndex, k int, valid *ml.Dataset) (WhatIfResult, error) {
	removed := make(map[prov.TupleID]bool, len(v.Remove))
	for _, id := range v.Remove {
		removed[id] = true
	}
	n := ft.Data.Len()
	keep := make([]int, 0, n)
	for o, p := range ft.Prov {
		if p.EvalBool(func(id prov.TupleID) bool { return !removed[id] }) {
			keep = append(keep, o)
		}
	}
	if len(keep) == 0 {
		return WhatIfResult{Name: v.Name, Metric: math.NaN(), Surviving: 0}, nil
	}
	var preds []int
	var err error
	switch {
	case base != nil && len(keep) == n:
		preds, err = base.PredictBatchLabels(k, ft.Data.Y)
	case base != nil:
		rm := make([]int, 0, n-len(keep))
		next := 0
		for o := 0; o < n; o++ {
			if next < len(keep) && keep[next] == o {
				next++
				continue
			}
			rm = append(rm, o)
		}
		var child *ml.NeighborIndex
		child, err = base.RemoveRows(rm)
		if err == nil {
			preds, err = child.PredictBatchLabels(k, child.Train.Y)
		}
	default: // rebuild oracle
		var ix *ml.NeighborIndex
		ix, err = ml.NewNeighborIndex(ft.Data.Subset(keep), valid, 1)
		if err == nil {
			preds = ix.PredictBatch(k)
		}
	}
	if err != nil {
		return WhatIfResult{}, err
	}
	return WhatIfResult{Name: v.Name, Metric: ml.Accuracy(valid.Y, preds), Surviving: len(keep)}, nil
}

// CompareWithReplay runs a removal variant both ways — via the provenance
// shortcut and via a full pipeline replay + featurize — and returns both
// metrics. Used by tests and benchmarks to validate and quantify the
// optimization.
func CompareWithReplay(
	p *Pipeline,
	outNode *Node,
	ft *Featurized,
	variant RemovalVariant,
	featurize func(*Result) (*ml.Dataset, error),
	newModel func() ml.Classifier,
	valid *ml.Dataset,
) (fast, slow float64, err error) {
	fastRes, err := WhatIfRemovals(ft, []RemovalVariant{variant}, newModel, valid)
	if err != nil {
		return 0, 0, err
	}
	fast = fastRes[0].Metric

	removed := make(map[prov.TupleID]bool, len(variant.Remove))
	for _, id := range variant.Remove {
		removed[id] = true
	}
	replayed, err := p.Replay(outNode, func(id prov.TupleID) bool { return removed[id] })
	if err != nil {
		return 0, 0, err
	}
	train, err := featurize(replayed)
	if err != nil {
		return 0, 0, err
	}
	slow, err = ml.EvaluateAccuracy(newModel(), train, valid)
	if err != nil {
		return 0, 0, err
	}
	return fast, slow, nil
}
