package pipeline

import (
	"fmt"

	"nde/internal/ml"
	"nde/internal/prov"
)

// This file implements data-centric what-if analysis (Grafberger, Groth,
// Schelter; SIGMOD 2023): answering many "what would the model quality be
// if these source tuples were gone?" questions WITHOUT re-running the
// pipeline per variant. Because every featurized output row carries its
// provenance polynomial, a removal variant reduces to a boolean filter over
// the already-computed feature matrix — orders of magnitude cheaper than
// replaying joins, filters and encoders.

// RemovalVariant is one intervention: drop the given source tuples.
type RemovalVariant struct {
	Name   string
	Remove []prov.TupleID
}

// WhatIfResult pairs a variant with the metric after retraining on the
// surviving output rows.
type WhatIfResult struct {
	Name      string
	Metric    float64
	Surviving int
}

// WhatIfRemovals evaluates every removal variant against a featurized
// pipeline output: for each variant it selects the output rows whose
// provenance survives the removal, retrains a fresh model, and reports the
// metric. Correctness relies on the provenance contract verified in the
// pipeline tests (polynomial evaluation ≡ pipeline replay): the results
// equal full replays at a fraction of the cost.
func WhatIfRemovals(ft *Featurized, variants []RemovalVariant, newModel func() ml.Classifier, valid *ml.Dataset) ([]WhatIfResult, error) {
	if newModel == nil {
		return nil, fmt.Errorf("pipeline: WhatIfRemovals needs a model factory")
	}
	out := make([]WhatIfResult, 0, len(variants))
	for _, v := range variants {
		removed := make(map[prov.TupleID]bool, len(v.Remove))
		for _, id := range v.Remove {
			removed[id] = true
		}
		var keep []int
		for o, p := range ft.Prov {
			if p.EvalBool(func(id prov.TupleID) bool { return !removed[id] }) {
				keep = append(keep, o)
			}
		}
		subset := ft.Data.Subset(keep)
		metric, err := ml.EvaluateAccuracy(newModel(), subset, valid)
		if err != nil {
			return nil, fmt.Errorf("pipeline: what-if variant %q: %w", v.Name, err)
		}
		out = append(out, WhatIfResult{Name: v.Name, Metric: metric, Surviving: len(keep)})
	}
	return out, nil
}

// CompareWithReplay runs a removal variant both ways — via the provenance
// shortcut and via a full pipeline replay + featurize — and returns both
// metrics. Used by tests and benchmarks to validate and quantify the
// optimization.
func CompareWithReplay(
	p *Pipeline,
	outNode *Node,
	ft *Featurized,
	variant RemovalVariant,
	featurize func(*Result) (*ml.Dataset, error),
	newModel func() ml.Classifier,
	valid *ml.Dataset,
) (fast, slow float64, err error) {
	fastRes, err := WhatIfRemovals(ft, []RemovalVariant{variant}, newModel, valid)
	if err != nil {
		return 0, 0, err
	}
	fast = fastRes[0].Metric

	removed := make(map[prov.TupleID]bool, len(variant.Remove))
	for _, id := range variant.Remove {
		removed[id] = true
	}
	replayed, err := p.Replay(outNode, func(id prov.TupleID) bool { return removed[id] })
	if err != nil {
		return 0, 0, err
	}
	train, err := featurize(replayed)
	if err != nil {
		return 0, 0, err
	}
	slow, err = ml.EvaluateAccuracy(newModel(), train, valid)
	if err != nil {
		return 0, 0, err
	}
	return fast, slow, nil
}
