package pipeline

import (
	"strings"
	"testing"

	"nde/internal/frame"
)

func TestRowCountAndNullInspections(t *testing.T) {
	p, out := hiringFixture(t)
	rows := NewRowCountInspection()
	nulls := NewNullCountInspection()
	p.AddInspection(rows)
	p.AddInspection(nulls)
	if _, err := p.Run(out); err != nil {
		t.Fatal(err)
	}
	if rows.Counts[out.ID()] != 3 {
		t.Errorf("output rows = %d", rows.Counts[out.ID()])
	}
	// the left join node introduces a null twitter value for person 3
	foundNull := false
	for _, cols := range nulls.Nulls {
		if cols["twitter"] > 0 {
			foundNull = true
		}
	}
	if !foundNull {
		t.Error("null inspection missed the unmatched left-join row")
	}
}

func TestGroupDistributionInspectionMaxShift(t *testing.T) {
	// a filter that removes every "b" group row must show a large shift
	data := frame.MustNew(
		frame.NewStringSeries("grp", []string{"a", "a", "b", "b"}, nil),
		frame.NewIntSeries("v", []int64{1, 2, 3, 4}, nil),
	)
	p := New()
	src := p.Source("t", data)
	filtered := p.Filter(src, "v <= 2", func(r frame.Row) bool { return r.Int("v") <= 2 })
	insp := NewGroupDistributionInspection("grp")
	p.AddInspection(insp)
	if _, err := p.Run(filtered); err != nil {
		t.Fatal(err)
	}
	shift, node := insp.MaxShift(p, filtered)
	if shift != 0.5 {
		t.Errorf("max shift = %v, want 0.5", shift)
	}
	if node == nil || node.Kind() != KindFilter {
		t.Errorf("shift attributed to %v", node)
	}
}

func TestGroupDistributionSkipsMissingColumn(t *testing.T) {
	data := frame.MustNew(frame.NewIntSeries("v", []int64{1}, nil))
	p := New()
	src := p.Source("t", data)
	insp := NewGroupDistributionInspection("grp")
	p.AddInspection(insp)
	if _, err := p.Run(src); err != nil {
		t.Fatal(err)
	}
	if len(insp.Dists) != 0 {
		t.Error("missing column should be skipped")
	}
}

func TestScreenLeakage(t *testing.T) {
	train := frame.MustNew(frame.NewIntSeries("id", []int64{1, 2, 3}, nil))
	testF := frame.MustNew(frame.NewIntSeries("id", []int64{3, 4}, nil))
	issues, err := ScreenLeakage(train, testF, []string{"id"})
	if err != nil {
		t.Fatal(err)
	}
	if len(issues) != 1 || issues[0].Severity != "error" {
		t.Fatalf("issues = %v", issues)
	}
	if !strings.Contains(issues[0].String(), "data-leakage") {
		t.Errorf("issue text = %s", issues[0])
	}
	clean := frame.MustNew(frame.NewIntSeries("id", []int64{9}, nil))
	issues, err = ScreenLeakage(train, clean, []string{"id"})
	if err != nil || len(issues) != 0 {
		t.Errorf("clean split should have no issues: %v %v", issues, err)
	}
	if _, err := ScreenLeakage(train, testF, []string{"nope"}); err == nil {
		t.Error("expected error for unknown key column")
	}
}

func TestScreenLabelShift(t *testing.T) {
	before := frame.MustNew(frame.NewStringSeries("y", []string{"p", "p", "n", "n"}, nil))
	after := frame.MustNew(frame.NewStringSeries("y", []string{"p", "p", "p", "n"}, nil))
	issues, err := ScreenLabelShift(before, after, "y", 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if len(issues) != 1 {
		t.Fatalf("issues = %v", issues)
	}
	issues, err = ScreenLabelShift(before, before, "y", 0.1)
	if err != nil || len(issues) != 0 {
		t.Error("identical distributions should pass")
	}
}

func TestScreenGroupCoverage(t *testing.T) {
	f := frame.MustNew(frame.NewStringSeries("g", []string{"a", "a", "a", "b"}, nil))
	issues, err := ScreenGroupCoverage(f, "g", 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(issues) != 1 || !strings.Contains(issues[0].Detail, "b(1)") {
		t.Fatalf("issues = %v", issues)
	}
	issues, err = ScreenGroupCoverage(f, "g", 1)
	if err != nil || len(issues) != 0 {
		t.Error("all groups covered should pass")
	}
}
