package pipeline

import (
	"fmt"
	"time"

	"nde/internal/frame"
	"nde/internal/obs"
	"nde/internal/prov"
)

// Result is the output of executing a pipeline node: a frame plus one
// provenance polynomial per row.
type Result struct {
	Frame *frame.Frame
	Prov  []prov.Polynomial
}

// NodeStats records the cost of one operator during a Run.
type NodeStats struct {
	Node    int
	Kind    Kind
	Label   string
	RowsIn  int
	RowsOut int
	// Wall is the operator's self time (apply only, excluding inputs and
	// inspections).
	Wall time.Duration
	// MemoHits counts how many times the operator's memoized result was
	// reused by other consumers during the run; a shared sub-plan executes
	// once and accumulates hits.
	MemoHits int
}

// RunStats summarizes one Run: total wall time and the memoization
// behavior that was previously invisible. MemoMisses equals the number of
// operators actually executed; MemoHits counts reuses of shared sub-plans.
type RunStats struct {
	Wall       time.Duration
	MemoHits   int
	MemoMisses int
	Nodes      map[int]*NodeStats
}

// Run executes the DAG rooted at out, memoizing shared sub-plans, tracking
// provenance through every operator, and feeding registered inspections.
// Per-operator stats are collected when obs is enabled or CollectStats was
// requested; otherwise the run is instrumentation-free (no extra
// allocations).
func (p *Pipeline) Run(out *Node) (*Result, error) {
	res, _, err := p.run(out, false)
	return res, err
}

// RunWithStats executes like Run and always collects per-operator stats,
// returning them alongside the result. The stats are also retained for
// LastRunStats / RenderPlanWithCosts.
func (p *Pipeline) RunWithStats(out *Node) (*Result, *RunStats, error) {
	return p.run(out, true)
}

func (p *Pipeline) run(out *Node, forceStats bool) (*Result, *RunStats, error) {
	var rs *RunStats
	if forceStats || p.collectStats || obs.Enabled() {
		rs = &RunStats{Nodes: make(map[int]*NodeStats, len(p.nodes))}
	}
	sp := obs.StartSpan("pipeline.run")
	start := time.Now()
	memo := make(map[int]*Result)
	res, err := p.exec(out, memo, rs)
	if err != nil {
		sp.SetStr("error", err.Error()).End()
		return nil, nil, err
	}
	if rs != nil {
		rs.Wall = time.Since(start)
		p.statsMu.Lock()
		p.lastRun = rs
		p.statsMu.Unlock()
		sp.SetInt("memo_hits", int64(rs.MemoHits)).SetInt("memo_misses", int64(rs.MemoMisses))
	}
	obs.Inc("pipeline_runs_total")
	sp.SetInt("rows_out", int64(res.Frame.NumRows())).End()
	return res, rs, nil
}

// LastRunStats returns the stats of the most recent stats-collecting Run
// of this pipeline (nil if none). The returned value must be treated as
// read-only.
func (p *Pipeline) LastRunStats() *RunStats {
	p.statsMu.Lock()
	defer p.statsMu.Unlock()
	return p.lastRun
}

// CollectStats forces per-operator stat collection on every Run of this
// pipeline, independent of the global obs switch. Off by default to keep
// Run allocation-free.
func (p *Pipeline) CollectStats(on bool) { p.collectStats = on }

func (p *Pipeline) exec(n *Node, memo map[int]*Result, rs *RunStats) (*Result, error) {
	if r, ok := memo[n.id]; ok {
		if rs != nil {
			rs.MemoHits++
			if st := rs.Nodes[n.id]; st != nil {
				st.MemoHits++
			}
		}
		obs.Inc("pipeline_memo_hits_total")
		return r, nil
	}
	sp := obs.StartSpan("pipeline.op")
	sp.SetStr("kind", n.kind.String()).SetInt("node", int64(n.id))
	ins := make([]*Result, len(n.inputs))
	for i, in := range n.inputs {
		r, err := p.exec(in, memo, rs)
		if err != nil {
			sp.End()
			return nil, err
		}
		ins[i] = r
	}
	rowsIn := 0
	for _, in := range ins {
		rowsIn += in.Frame.NumRows()
	}
	applyStart := time.Now()
	res, err := p.apply(n, ins)
	if err != nil {
		sp.SetStr("error", err.Error()).End()
		return nil, fmt.Errorf("pipeline: node %d %s: %w", n.id, n.label, err)
	}
	self := time.Since(applyStart)
	if len(res.Prov) != res.Frame.NumRows() {
		sp.End()
		return nil, fmt.Errorf("pipeline: node %d %s produced %d provenance entries for %d rows",
			n.id, n.label, len(res.Prov), res.Frame.NumRows())
	}
	for _, insp := range p.inspections {
		insp.Observe(n, res)
	}
	if rs != nil {
		rs.MemoMisses++
		rs.Nodes[n.id] = &NodeStats{
			Node:    n.id,
			Kind:    n.kind,
			Label:   n.label,
			RowsIn:  rowsIn,
			RowsOut: res.Frame.NumRows(),
			Wall:    self,
		}
	}
	obs.Inc("pipeline_memo_misses_total")
	sp.SetStr("label", n.label).SetRows(rowsIn, res.Frame.NumRows()).End()
	memo[n.id] = res
	return res, nil
}

func (p *Pipeline) apply(n *Node, ins []*Result) (*Result, error) {
	switch n.kind {
	case KindSource:
		f := n.sourceFrame
		polys := make([]prov.Polynomial, f.NumRows())
		for i := range polys {
			polys[i] = prov.Var(prov.TupleID{Table: n.sourceName, Row: i})
		}
		return &Result{Frame: f, Prov: polys}, nil

	case KindFilter:
		in := ins[0]
		out, kept := in.Frame.Filter(n.pred)
		polys := make([]prov.Polynomial, len(kept))
		for o, i := range kept {
			polys[o] = in.Prov[i]
		}
		return &Result{Frame: out, Prov: polys}, nil

	case KindJoin:
		left, right := ins[0], ins[1]
		jr, err := frame.Join(left.Frame, right.Frame, n.leftOn, n.rightOn, n.joinKind)
		if err != nil {
			return nil, err
		}
		polys := make([]prov.Polynomial, len(jr.LeftIdx))
		for o := range jr.LeftIdx {
			lp := left.Prov[jr.LeftIdx[o]]
			if ri := jr.RightIdx[o]; ri >= 0 {
				polys[o] = prov.Mul(lp, right.Prov[ri])
			} else {
				polys[o] = lp // left join without a match depends only on the left tuple
			}
		}
		return &Result{Frame: jr.Frame, Prov: polys}, nil

	case KindProject:
		in := ins[0]
		out, err := in.Frame.Select(n.columns...)
		if err != nil {
			return nil, err
		}
		return &Result{Frame: out, Prov: in.Prov}, nil

	case KindMapCol:
		in := ins[0]
		out, err := in.Frame.Map(n.mapCol, n.mapKind, n.mapFn)
		if err != nil {
			return nil, err
		}
		return &Result{Frame: out, Prov: in.Prov}, nil

	case KindFuzzyJoin:
		left, right := ins[0], ins[1]
		jr, err := frame.FuzzyJoin(left.Frame, right.Frame, n.leftOn[0], n.rightOn[0], n.fuzzyDist, frame.FuzzyAllMatches)
		if err != nil {
			return nil, err
		}
		polys := make([]prov.Polynomial, len(jr.LeftIdx))
		for o := range jr.LeftIdx {
			polys[o] = prov.Mul(left.Prov[jr.LeftIdx[o]], right.Prov[jr.RightIdx[o]])
		}
		return &Result{Frame: jr.Frame, Prov: polys}, nil

	case KindGroupAgg:
		in := ins[0]
		out, members, err := in.Frame.GroupBy(n.groupKeys, n.groupAggs)
		if err != nil {
			return nil, err
		}
		polys := make([]prov.Polynomial, out.NumRows())
		for gi, m := range members {
			poly := prov.Zero()
			for _, row := range m {
				poly = prov.Add(poly, in.Prov[row])
			}
			polys[gi] = poly
		}
		return &Result{Frame: out, Prov: polys}, nil

	case KindConcat:
		frames := make([]*frame.Frame, len(ins))
		for i, r := range ins {
			frames[i] = r.Frame
		}
		out, srcFrame, srcRow, err := frame.Concat(frames...)
		if err != nil {
			return nil, err
		}
		polys := make([]prov.Polynomial, out.NumRows())
		for o := range polys {
			polys[o] = ins[srcFrame[o]].Prov[srcRow[o]]
		}
		return &Result{Frame: out, Prov: polys}, nil
	}
	return nil, fmt.Errorf("unknown node kind %v", n.kind)
}

// Replay re-executes the pipeline with some source tuples removed, by
// filtering each source frame before execution. removed maps a source tuple
// id to true when it should be dropped. This is the ground-truth
// intervention that provenance polynomials predict; it is used by tests and
// by exact group-importance computations.
func (p *Pipeline) Replay(out *Node, removed func(prov.TupleID) bool) (*Result, error) {
	clone := New()
	clone.inspections = nil
	mapping := make(map[int]*Node, len(p.nodes))
	for _, n := range p.nodes {
		var nn *Node
		switch n.kind {
		case KindSource:
			kept, _ := n.sourceFrame.Filter(func(r frame.Row) bool {
				return !removed(prov.TupleID{Table: n.sourceName, Row: r.Index()})
			})
			nn = clone.Source(n.sourceName, kept)
		default:
			inputs := make([]*Node, len(n.inputs))
			for i, in := range n.inputs {
				inputs[i] = mapping[in.id]
			}
			c := *n
			c.inputs = inputs
			nn = clone.add(&c)
		}
		mapping[n.id] = nn
	}
	return clone.Run(mapping[out.id])
}
