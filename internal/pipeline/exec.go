package pipeline

import (
	"fmt"

	"nde/internal/frame"
	"nde/internal/prov"
)

// Result is the output of executing a pipeline node: a frame plus one
// provenance polynomial per row.
type Result struct {
	Frame *frame.Frame
	Prov  []prov.Polynomial
}

// Run executes the DAG rooted at out, memoizing shared sub-plans, tracking
// provenance through every operator, and feeding registered inspections.
func (p *Pipeline) Run(out *Node) (*Result, error) {
	memo := make(map[int]*Result)
	res, err := p.exec(out, memo)
	if err != nil {
		return nil, err
	}
	return res, nil
}

func (p *Pipeline) exec(n *Node, memo map[int]*Result) (*Result, error) {
	if r, ok := memo[n.id]; ok {
		return r, nil
	}
	ins := make([]*Result, len(n.inputs))
	for i, in := range n.inputs {
		r, err := p.exec(in, memo)
		if err != nil {
			return nil, err
		}
		ins[i] = r
	}
	res, err := p.apply(n, ins)
	if err != nil {
		return nil, fmt.Errorf("pipeline: node %d %s: %w", n.id, n.label, err)
	}
	if len(res.Prov) != res.Frame.NumRows() {
		return nil, fmt.Errorf("pipeline: node %d %s produced %d provenance entries for %d rows",
			n.id, n.label, len(res.Prov), res.Frame.NumRows())
	}
	for _, insp := range p.inspections {
		insp.Observe(n, res)
	}
	memo[n.id] = res
	return res, nil
}

func (p *Pipeline) apply(n *Node, ins []*Result) (*Result, error) {
	switch n.kind {
	case KindSource:
		f := n.sourceFrame
		polys := make([]prov.Polynomial, f.NumRows())
		for i := range polys {
			polys[i] = prov.Var(prov.TupleID{Table: n.sourceName, Row: i})
		}
		return &Result{Frame: f, Prov: polys}, nil

	case KindFilter:
		in := ins[0]
		out, kept := in.Frame.Filter(n.pred)
		polys := make([]prov.Polynomial, len(kept))
		for o, i := range kept {
			polys[o] = in.Prov[i]
		}
		return &Result{Frame: out, Prov: polys}, nil

	case KindJoin:
		left, right := ins[0], ins[1]
		jr, err := frame.Join(left.Frame, right.Frame, n.leftOn, n.rightOn, n.joinKind)
		if err != nil {
			return nil, err
		}
		polys := make([]prov.Polynomial, len(jr.LeftIdx))
		for o := range jr.LeftIdx {
			lp := left.Prov[jr.LeftIdx[o]]
			if ri := jr.RightIdx[o]; ri >= 0 {
				polys[o] = prov.Mul(lp, right.Prov[ri])
			} else {
				polys[o] = lp // left join without a match depends only on the left tuple
			}
		}
		return &Result{Frame: jr.Frame, Prov: polys}, nil

	case KindProject:
		in := ins[0]
		out, err := in.Frame.Select(n.columns...)
		if err != nil {
			return nil, err
		}
		return &Result{Frame: out, Prov: in.Prov}, nil

	case KindMapCol:
		in := ins[0]
		out, err := in.Frame.Map(n.mapCol, n.mapKind, n.mapFn)
		if err != nil {
			return nil, err
		}
		return &Result{Frame: out, Prov: in.Prov}, nil

	case KindFuzzyJoin:
		left, right := ins[0], ins[1]
		jr, err := frame.FuzzyJoin(left.Frame, right.Frame, n.leftOn[0], n.rightOn[0], n.fuzzyDist, frame.FuzzyAllMatches)
		if err != nil {
			return nil, err
		}
		polys := make([]prov.Polynomial, len(jr.LeftIdx))
		for o := range jr.LeftIdx {
			polys[o] = prov.Mul(left.Prov[jr.LeftIdx[o]], right.Prov[jr.RightIdx[o]])
		}
		return &Result{Frame: jr.Frame, Prov: polys}, nil

	case KindGroupAgg:
		in := ins[0]
		out, members, err := in.Frame.GroupBy(n.groupKeys, n.groupAggs)
		if err != nil {
			return nil, err
		}
		polys := make([]prov.Polynomial, out.NumRows())
		for gi, m := range members {
			poly := prov.Zero()
			for _, row := range m {
				poly = prov.Add(poly, in.Prov[row])
			}
			polys[gi] = poly
		}
		return &Result{Frame: out, Prov: polys}, nil

	case KindConcat:
		frames := make([]*frame.Frame, len(ins))
		for i, r := range ins {
			frames[i] = r.Frame
		}
		out, srcFrame, srcRow, err := frame.Concat(frames...)
		if err != nil {
			return nil, err
		}
		polys := make([]prov.Polynomial, out.NumRows())
		for o := range polys {
			polys[o] = ins[srcFrame[o]].Prov[srcRow[o]]
		}
		return &Result{Frame: out, Prov: polys}, nil
	}
	return nil, fmt.Errorf("unknown node kind %v", n.kind)
}

// Replay re-executes the pipeline with some source tuples removed, by
// filtering each source frame before execution. removed maps a source tuple
// id to true when it should be dropped. This is the ground-truth
// intervention that provenance polynomials predict; it is used by tests and
// by exact group-importance computations.
func (p *Pipeline) Replay(out *Node, removed func(prov.TupleID) bool) (*Result, error) {
	clone := New()
	clone.inspections = nil
	mapping := make(map[int]*Node, len(p.nodes))
	for _, n := range p.nodes {
		var nn *Node
		switch n.kind {
		case KindSource:
			kept, _ := n.sourceFrame.Filter(func(r frame.Row) bool {
				return !removed(prov.TupleID{Table: n.sourceName, Row: r.Index()})
			})
			nn = clone.Source(n.sourceName, kept)
		default:
			inputs := make([]*Node, len(n.inputs))
			for i, in := range n.inputs {
				inputs[i] = mapping[in.id]
			}
			c := *n
			c.inputs = inputs
			nn = clone.add(&c)
		}
		mapping[n.id] = nn
	}
	return clone.Run(mapping[out.id])
}
