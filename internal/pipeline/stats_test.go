package pipeline

import (
	"strings"
	"testing"

	"nde/internal/frame"
	"nde/internal/obs"
)

// diamondFixture builds a DAG where one filter feeds two branches that are
// concatenated — the shared sub-plan whose single execution the memo must
// guarantee.
func diamondFixture(t *testing.T) (*Pipeline, *Node, *Node) {
	t.Helper()
	src := frame.MustNew(
		frame.NewIntSeries("a", []int64{1, 2, 3, 4, 5, 6}, nil),
	)
	p := New()
	s := p.Source("t", src)
	shared := p.Filter(s, "a >= 2", func(r frame.Row) bool { return r.Int("a") >= 2 })
	left := p.Filter(shared, "a <= 4", func(r frame.Row) bool { return r.Int("a") <= 4 })
	right := p.Filter(shared, "a >= 5", func(r frame.Row) bool { return r.Int("a") >= 5 })
	out := p.Concat(left, right)
	return p, out, shared
}

// Regression: a sub-plan consumed by two parents executes exactly once per
// run; the second consumer is served from the memo. Previously this
// behavior was invisible — RunStats now exposes it.
func TestMemoSharedSubPlanExecutesOnce(t *testing.T) {
	p, out, shared := diamondFixture(t)
	res, rs, err := p.RunWithStats(out)
	if err != nil {
		t.Fatal(err)
	}
	if res.Frame.NumRows() != 5 {
		t.Fatalf("rows = %d", res.Frame.NumRows())
	}
	if rs == nil {
		t.Fatal("RunWithStats returned nil stats")
	}
	// 5 distinct operators: source, shared filter, two branch filters, concat
	if rs.MemoMisses != 5 {
		t.Errorf("memo misses = %d, want 5 (one per distinct operator)", rs.MemoMisses)
	}
	if rs.MemoHits != 1 {
		t.Errorf("memo hits = %d, want 1 (shared filter reused once)", rs.MemoHits)
	}
	st := rs.Nodes[shared.ID()]
	if st == nil {
		t.Fatal("no stats for shared node")
	}
	if st.MemoHits != 1 {
		t.Errorf("shared node memo hits = %d, want 1", st.MemoHits)
	}
	if st.RowsIn != 6 || st.RowsOut != 5 {
		t.Errorf("shared node rows = %d→%d, want 6→5", st.RowsIn, st.RowsOut)
	}
	if len(rs.Nodes) != 5 {
		t.Errorf("stats cover %d nodes, want 5", len(rs.Nodes))
	}
	if rs.Wall <= 0 {
		t.Errorf("run wall = %v, want > 0", rs.Wall)
	}
}

func TestRunWithoutStatsCollectsNothing(t *testing.T) {
	p, out, _ := diamondFixture(t)
	if _, err := p.Run(out); err != nil {
		t.Fatal(err)
	}
	if rs := p.LastRunStats(); rs != nil {
		t.Errorf("plain Run collected stats: %+v", rs)
	}
	p.CollectStats(true)
	if _, err := p.Run(out); err != nil {
		t.Fatal(err)
	}
	if rs := p.LastRunStats(); rs == nil {
		t.Error("CollectStats(true) Run collected no stats")
	}
}

func TestRenderPlanWithCosts(t *testing.T) {
	p, out := hiringFixture(t)
	// before any run: identical shape to the plain plan, no annotations
	if plan := p.RenderPlanWithCosts(out); strings.Contains(plan, "rows,") {
		t.Errorf("unexpected annotations before run:\n%s", plan)
	}
	if _, _, err := p.RunWithStats(out); err != nil {
		t.Fatal(err)
	}
	plan := p.RenderPlanWithCosts(out)
	if !strings.Contains(plan, "rows,") {
		t.Errorf("plan missing cost annotations:\n%s", plan)
	}
	if !strings.Contains(plan, "Source(train: 4 rows)  [0→4 rows,") {
		t.Errorf("source annotation missing:\n%s", plan)
	}
	// every non-shared line is annotated
	for _, line := range strings.Split(plan, "\n") {
		if !strings.Contains(line, "rows,") {
			t.Errorf("unannotated line %q in:\n%s", line, plan)
		}
	}
}

// With obs enabled, one span per executed operator is recorded with kind
// and rows in/out, nested under the pipeline.run root.
func TestRunEmitsOperatorSpans(t *testing.T) {
	obs.Enable()
	defer obs.Disable()
	defer obs.Reset()
	obs.Reset()
	obs.DefaultTracer().CaptureAllocs(false)

	p, out := hiringFixture(t)
	if _, err := p.Run(out); err != nil {
		t.Fatal(err)
	}
	roots := obs.DefaultTracer().Roots()
	if len(roots) != 1 || roots[0].Name() != "pipeline.run" {
		t.Fatalf("roots = %v", roots)
	}
	ops := 0
	var walk func(s *obs.Span)
	walk = func(s *obs.Span) {
		if s.Name() == "pipeline.op" {
			ops++
			if _, ok := s.Attr("kind"); !ok {
				t.Errorf("op span missing kind attr")
			}
			if _, ok := s.Attr("rows_out"); !ok {
				t.Errorf("op span missing rows_out attr")
			}
		}
		for _, c := range s.Children() {
			walk(c)
		}
	}
	walk(roots[0])
	// hiring fixture: 3 sources + 2 joins + filter + mapcol + project = 8 ops
	if ops != 8 {
		t.Errorf("operator spans = %d, want 8", ops)
	}
	if hits := obs.Default().Counter("pipeline_memo_misses_total").Value(); hits != 8 {
		t.Errorf("memo misses counter = %d, want 8", hits)
	}
}
