package pipeline

import (
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"testing"
	"testing/quick"

	"nde/internal/encode"
	"nde/internal/frame"
	"nde/internal/linalg"
	"nde/internal/ml"
	"nde/internal/obs"
	"nde/internal/prov"
)

// whatIfFixture builds a small featurized pipeline with a validation set in
// the same space, using an encoder fitted once (so fast and slow paths
// share the feature space).
func whatIfFixture(t *testing.T) (*Pipeline, *Node, *Featurized, *encode.ColumnTransformer, *ml.Dataset) {
	t.Helper()
	r := rand.New(rand.NewSource(601))
	n := 40
	xs := make([]float64, n)
	ys := make([]string, n)
	for i := range xs {
		c := i % 2
		xs[i] = float64(2*c-1)*2 + 0.5*r.NormFloat64()
		ys[i] = []string{"neg", "pos"}[c]
	}
	src := frame.MustNew(
		frame.NewFloatSeries("x", xs, nil),
		frame.NewStringSeries("y", ys, nil),
	)
	p := New()
	node := p.Source("train", src)
	res, err := p.Run(node)
	if err != nil {
		t.Fatal(err)
	}
	ct := encode.NewColumnTransformer(encode.ColumnSpec{Column: "x", Encoder: encode.NewStandardScaler()})
	ft, err := Featurize(res, ct, "y", "")
	if err != nil {
		t.Fatal(err)
	}
	vx := linalg.NewMatrix(16, 1)
	vy := make([]int, 16)
	for i := 0; i < 16; i++ {
		c := i % 2
		vy[i] = c
		vx.Set(i, 0, float64(2*c-1)+0.2*r.NormFloat64())
	}
	valid, _ := ml.NewDataset(vx, vy)
	return p, node, ft, ct, valid
}

func TestWhatIfRemovalsBasic(t *testing.T) {
	_, _, ft, _, valid := whatIfFixture(t)
	newModel := func() ml.Classifier { return ml.NewKNN(3) }
	variants := []RemovalVariant{
		{Name: "none", Remove: nil},
		{Name: "drop-5", Remove: []prov.TupleID{
			{Table: "train", Row: 0}, {Table: "train", Row: 1},
			{Table: "train", Row: 2}, {Table: "train", Row: 3},
			{Table: "train", Row: 4},
		}},
	}
	results, err := WhatIfRemovals(ft, variants, newModel, valid)
	if err != nil {
		t.Fatal(err)
	}
	if results[0].Surviving != 40 {
		t.Errorf("none variant survivors = %d", results[0].Surviving)
	}
	if results[1].Surviving != 35 {
		t.Errorf("drop-5 survivors = %d", results[1].Surviving)
	}
	if results[0].Metric < 0.8 {
		t.Errorf("baseline metric = %v", results[0].Metric)
	}
	if _, err := WhatIfRemovals(ft, variants, nil, valid); err == nil {
		t.Error("expected error for nil model factory")
	}
}

// Property: the provenance-shortcut what-if equals a full pipeline replay
// for random removal sets (using a shared fitted encoder so both paths live
// in the same feature space).
func TestQuickWhatIfEqualsReplay(t *testing.T) {
	p, node, ft, ct, valid := whatIfFixture(t)
	newModel := func() ml.Classifier { return ml.NewKNN(3) }
	featurize := func(res *Result) (*ml.Dataset, error) {
		x, err := ct.Transform(res.Frame)
		if err != nil {
			return nil, err
		}
		labels := res.Frame.MustColumn("y")
		y := make([]int, labels.Len())
		for i := range y {
			if labels.Str(i) == "pos" {
				y[i] = 1
			}
		}
		return ml.NewDataset(x, y)
	}
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		var remove []prov.TupleID
		for row := 0; row < 40; row++ {
			if r.Float64() < 0.3 {
				remove = append(remove, prov.TupleID{Table: "train", Row: row})
			}
		}
		if len(remove) >= 39 {
			return true // avoid emptying the training set
		}
		fast, slow, err := CompareWithReplay(p, node, ft,
			RemovalVariant{Name: "rand", Remove: remove}, featurize, newModel, valid)
		if err != nil {
			return false
		}
		return fast == slow
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestGroupAggProvenance(t *testing.T) {
	data := frame.MustNew(
		frame.NewStringSeries("sector", []string{"a", "a", "b"}, nil),
		frame.NewFloatSeries("v", []float64{1, 3, 10}, nil),
	)
	p := New()
	src := p.Source("t", data)
	agg := p.GroupAgg(src, []string{"sector"}, []frame.Agg{{Col: "v", Func: frame.AggMean}})
	res, err := p.Run(agg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Frame.NumRows() != 2 {
		t.Fatalf("groups = %d", res.Frame.NumRows())
	}
	if got := res.Frame.MustColumn("mean_v").Float(0); got != 2 {
		t.Errorf("mean a = %v", got)
	}
	// group "a" provenance: t[0] + t[1] (exists if either survives)
	pa := res.Prov[0]
	if !pa.DependsOn(prov.TupleID{Table: "t", Row: 0}) || !pa.DependsOn(prov.TupleID{Table: "t", Row: 1}) {
		t.Errorf("group provenance = %v", pa)
	}
	only0 := pa.EvalBool(func(id prov.TupleID) bool { return id.Row == 0 })
	if !only0 {
		t.Error("group should survive with only one member")
	}
	none := pa.EvalBool(func(id prov.TupleID) bool { return id.Row == 2 })
	if none {
		t.Error("group should vanish when all members are removed")
	}
	// plan label
	if got := agg.Label(); got != "GroupAgg(by=[sector], 1 aggs)" {
		t.Errorf("label = %q", got)
	}
	if KindGroupAgg.String() != "GroupAgg" {
		t.Error("kind name wrong")
	}
}

func TestGroupAggExistenceMatchesReplay(t *testing.T) {
	data := frame.MustNew(
		frame.NewStringSeries("g", []string{"a", "a", "b", "c"}, nil),
		frame.NewFloatSeries("v", []float64{1, 2, 3, 4}, nil),
	)
	p := New()
	src := p.Source("t", data)
	agg := p.GroupAgg(src, []string{"g"}, []frame.Agg{{Func: frame.AggCount}})
	full, err := p.Run(agg)
	if err != nil {
		t.Fatal(err)
	}
	// remove t[0] and t[3]: group a survives (via t[1]), c vanishes
	removed := map[int]bool{0: true, 3: true}
	replayed, err := p.Replay(agg, func(id prov.TupleID) bool { return removed[id.Row] })
	if err != nil {
		t.Fatal(err)
	}
	var predicted []string
	for gi := 0; gi < full.Frame.NumRows(); gi++ {
		if full.Prov[gi].EvalBool(func(id prov.TupleID) bool { return !removed[id.Row] }) {
			predicted = append(predicted, full.Frame.MustColumn("g").Str(gi))
		}
	}
	actual, _ := replayed.Frame.MustColumn("g").Strings()
	if len(predicted) != len(actual) {
		t.Fatalf("predicted %v, actual %v", predicted, actual)
	}
	for i := range predicted {
		if predicted[i] != actual[i] {
			t.Errorf("group %d: predicted %s, actual %s", i, predicted[i], actual[i])
		}
	}
}

// Parallel what-if evaluation must be bit-for-bit identical to serial:
// same variant order, same metrics (compared as float bits), same survivor
// counts for workers 1, 4 and GOMAXPROCS.
func TestWhatIfRemovalsParallelDeterminism(t *testing.T) {
	_, _, ft, _, valid := whatIfFixture(t)
	newModel := func() ml.Classifier { return ml.NewKNN(3) }
	r := rand.New(rand.NewSource(77))
	variants := make([]RemovalVariant, 12)
	for v := range variants {
		var remove []prov.TupleID
		for row := 0; row < 40; row++ {
			if r.Float64() < 0.2 {
				remove = append(remove, prov.TupleID{Table: "train", Row: row})
			}
		}
		variants[v] = RemovalVariant{Name: fmt.Sprintf("v%d", v), Remove: remove}
	}
	serial, err := WhatIfRemovalsParallel(ft, variants, newModel, valid, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{4, runtime.GOMAXPROCS(0)} {
		got, err := WhatIfRemovalsParallel(ft, variants, newModel, valid, workers)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(serial) {
			t.Fatalf("workers=%d: %d results, want %d", workers, len(got), len(serial))
		}
		for i := range got {
			if got[i].Name != serial[i].Name || got[i].Surviving != serial[i].Surviving ||
				math.Float64bits(got[i].Metric) != math.Float64bits(serial[i].Metric) {
				t.Errorf("workers=%d variant %d: got %+v, want %+v", workers, i, got[i], serial[i])
			}
		}
	}
}

// A variant that removes every surviving output row must not abort the
// batch: it reports Surviving 0 with the NaN sentinel while its siblings
// are evaluated normally.
func TestWhatIfRemovalsAllTuplesRemoved(t *testing.T) {
	_, _, ft, _, valid := whatIfFixture(t)
	newModel := func() ml.Classifier { return ml.NewKNN(3) }
	all := make([]prov.TupleID, 40)
	for row := range all {
		all[row] = prov.TupleID{Table: "train", Row: row}
	}
	variants := []RemovalVariant{
		{Name: "none", Remove: nil},
		{Name: "everything", Remove: all},
		{Name: "drop-2", Remove: all[:2]},
	}
	results, err := WhatIfRemovals(ft, variants, newModel, valid)
	if err != nil {
		t.Fatal(err)
	}
	if results[1].Surviving != 0 || !math.IsNaN(results[1].Metric) {
		t.Errorf("all-removed variant = %+v, want Surviving 0 and NaN metric", results[1])
	}
	if results[0].Surviving != 40 || math.IsNaN(results[0].Metric) {
		t.Errorf("none variant = %+v", results[0])
	}
	if results[2].Surviving != 38 || math.IsNaN(results[2].Metric) {
		t.Errorf("drop-2 variant = %+v", results[2])
	}
}

// Per-variant spans appear under the batch span when obs is on.
func TestWhatIfRemovalsObsWiring(t *testing.T) {
	obs.Enable()
	defer obs.Disable()
	defer obs.Reset()
	obs.Reset()
	_, _, ft, _, valid := whatIfFixture(t)
	newModel := func() ml.Classifier { return ml.NewKNN(3) }
	variants := []RemovalVariant{
		{Name: "a"}, {Name: "b", Remove: []prov.TupleID{{Table: "train", Row: 1}}},
	}
	if _, err := WhatIfRemovalsParallel(ft, variants, newModel, valid, 2); err != nil {
		t.Fatal(err)
	}
	if got := obs.Default().Counter("whatif_variants_total").Value(); got != 2 {
		t.Errorf("whatif_variants_total = %d, want 2", got)
	}
	var batch *obs.Span
	for _, root := range obs.DefaultTracer().Roots() {
		if root.Name() == "pipeline.whatif" {
			batch = root
		}
	}
	if batch == nil {
		t.Fatal("no pipeline.whatif span recorded")
	}
	perVariant := 0
	for _, c := range batch.Children() {
		if c.Name() == "pipeline.whatif.variant" {
			perVariant++
		}
	}
	if perVariant != 2 {
		t.Errorf("batch span has %d per-variant children, want 2", perVariant)
	}
}
