package pipeline

import (
	"testing"

	"nde/internal/encode"
	"nde/internal/frame"
)

func TestFeaturize(t *testing.T) {
	p, out := hiringFixture(t)
	res, err := p.Run(out)
	if err != nil {
		t.Fatal(err)
	}
	ct := encode.NewColumnTransformer(
		encode.ColumnSpec{Column: "letter", Encoder: encode.NewHashingVectorizer(8)},
		encode.ColumnSpec{Column: "has_twitter", Encoder: encode.NewOneHotEncoder()},
	)
	ft, err := Featurize(res, ct, "sentiment", "")
	if err != nil {
		t.Fatal(err)
	}
	if ft.Data.Len() != 3 {
		t.Fatalf("rows = %d", ft.Data.Len())
	}
	if len(ft.LabelNames) != 2 || ft.LabelNames[0] != "negative" || ft.LabelNames[1] != "positive" {
		t.Errorf("labels = %v", ft.LabelNames)
	}
	// row 0 = person 1 (positive), row 2 = person 4 (negative)
	if ft.Data.Y[0] != 1 || ft.Data.Y[2] != 0 {
		t.Errorf("y = %v", ft.Data.Y)
	}
	if len(ft.Prov) != 3 {
		t.Error("provenance lost in featurization")
	}
	if len(ft.FeatureNames) != ft.Data.Dim() {
		t.Errorf("feature names %d vs dim %d", len(ft.FeatureNames), ft.Data.Dim())
	}
}

func TestFeaturizeWithGroups(t *testing.T) {
	data := frame.MustNew(
		frame.NewFloatSeries("x", []float64{1, 2, 3}, nil),
		frame.NewStringSeries("y", []string{"a", "b", "a"}, nil),
		frame.NewStringSeries("sex", []string{"f", "m", "f"}, nil),
	)
	p := New()
	src := p.Source("t", data)
	res, err := p.Run(src)
	if err != nil {
		t.Fatal(err)
	}
	ct := encode.NewColumnTransformer(encode.ColumnSpec{Column: "x", Encoder: encode.NewStandardScaler()})
	ft, err := Featurize(res, ct, "y", "sex")
	if err != nil {
		t.Fatal(err)
	}
	if len(ft.Data.Groups) != 3 || ft.Data.Groups[1] != "m" {
		t.Errorf("groups = %v", ft.Data.Groups)
	}
}

func TestFeaturizeRejectsNullLabels(t *testing.T) {
	data := frame.MustNew(
		frame.NewFloatSeries("x", []float64{1}, nil),
		frame.NewStringSeries("y", []string{""}, []bool{false}),
	)
	p := New()
	res, err := p.Run(p.Source("t", data))
	if err != nil {
		t.Fatal(err)
	}
	ct := encode.NewColumnTransformer(encode.ColumnSpec{Column: "x", Encoder: encode.NewStandardScaler()})
	if _, err := Featurize(res, ct, "y", ""); err == nil {
		t.Error("expected error for null label")
	}
}

func TestSourceRowsAndOutputsOf(t *testing.T) {
	p, out := hiringFixture(t)
	res, err := p.Run(out)
	if err != nil {
		t.Fatal(err)
	}
	ct := encode.NewColumnTransformer(
		encode.ColumnSpec{Column: "letter", Encoder: encode.NewHashingVectorizer(4)},
	)
	ft, err := Featurize(res, ct, "sentiment", "")
	if err != nil {
		t.Fatal(err)
	}
	src := ft.SourceRows("train")
	// output rows come from train rows 0, 2, 3 (persons 1, 3, 4)
	if len(src) != 3 || src[0][0] != 0 || src[1][0] != 2 || src[2][0] != 3 {
		t.Errorf("SourceRows = %v", src)
	}
	outs := ft.OutputsOf("train", 4)
	if len(outs[1]) != 0 { // person 2 is finance, filtered out
		t.Errorf("OutputsOf train[1] = %v", outs[1])
	}
	if len(outs[0]) != 1 || outs[0][0] != 0 {
		t.Errorf("OutputsOf train[0] = %v", outs[0])
	}
	// jobs[0] (job 10) supports output rows 0 and 1
	jOuts := ft.OutputsOf("jobs", 3)
	if len(jOuts[0]) != 2 {
		t.Errorf("OutputsOf jobs[0] = %v", jOuts[0])
	}
}
