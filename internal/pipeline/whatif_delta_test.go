package pipeline

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"nde/internal/ml"
	"nde/internal/prov"
)

func randomVariants(r *rand.Rand, n, count int) []RemovalVariant {
	variants := make([]RemovalVariant, count)
	for v := range variants {
		var remove []prov.TupleID
		for row := 0; row < n; row++ {
			if r.Float64() < 0.25 {
				remove = append(remove, prov.TupleID{Table: "train", Row: row})
			}
		}
		variants[v] = RemovalVariant{Name: fmt.Sprintf("v%d", v), Remove: remove}
	}
	return variants
}

// The delta fast path (shared base index + RemoveRows per variant) must be
// bit-identical to the per-variant full rebuild, at every worker count.
func TestWhatIfDeltaEqualsForceRebuild(t *testing.T) {
	_, _, ft, _, valid := whatIfFixture(t)
	newModel := func() ml.Classifier { return ml.NewKNN(3) }
	r := rand.New(rand.NewSource(701))
	variants := randomVariants(r, 40, 10)
	variants = append(variants, RemovalVariant{Name: "none"})

	oracle, err := WhatIfRemovalsConfig(ft, variants, newModel, valid, WhatIfConfig{Workers: 1, ForceRebuild: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 4} {
		got, err := WhatIfRemovalsConfig(ft, variants, newModel, valid, WhatIfConfig{Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		for i := range oracle {
			if got[i].Surviving != oracle[i].Surviving {
				t.Fatalf("workers=%d variant %q: surviving %d, rebuild %d",
					workers, variants[i].Name, got[i].Surviving, oracle[i].Surviving)
			}
			if math.Float64bits(got[i].Metric) != math.Float64bits(oracle[i].Metric) {
				t.Fatalf("workers=%d variant %q: metric %x, rebuild %x",
					workers, variants[i].Name, math.Float64bits(got[i].Metric), math.Float64bits(oracle[i].Metric))
			}
		}
	}
}

// A non-kNN model factory must keep the generic retrain path working.
func TestWhatIfDeltaNonKNNFallsBack(t *testing.T) {
	_, _, ft, _, valid := whatIfFixture(t)
	newModel := func() ml.Classifier { return ml.NewLogisticRegression() }
	variants := []RemovalVariant{
		{Name: "none"},
		{Name: "drop", Remove: []prov.TupleID{{Table: "train", Row: 0}, {Table: "train", Row: 3}}},
	}
	got, err := WhatIfRemovalsConfig(ft, variants, newModel, valid, WhatIfConfig{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	oracle, err := WhatIfRemovals(ft, variants, newModel, valid)
	if err != nil {
		t.Fatal(err)
	}
	for i := range oracle {
		if got[i] != oracle[i] {
			t.Fatalf("variant %q: %+v, want %+v", variants[i].Name, got[i], oracle[i])
		}
	}
}

// Removing every surviving row must yield the NaN sentinel on the delta
// path too, not an error.
func TestWhatIfDeltaEmptyVariant(t *testing.T) {
	_, _, ft, _, valid := whatIfFixture(t)
	newModel := func() ml.Classifier { return ml.NewKNN(3) }
	all := make([]prov.TupleID, 40)
	for i := range all {
		all[i] = prov.TupleID{Table: "train", Row: i}
	}
	results, err := WhatIfRemovalsConfig(ft, []RemovalVariant{{Name: "all", Remove: all}}, newModel, valid, WhatIfConfig{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if results[0].Surviving != 0 || !math.IsNaN(results[0].Metric) {
		t.Fatalf("empty variant = %+v, want 0 survivors and NaN metric", results[0])
	}
}
