package pipeline

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"nde/internal/frame"
	"nde/internal/prov"
)

// hiringFixture builds the Figure-3 style pipeline: train ⋈ jobdetail ⋈
// social, filtered to healthcare, with a has_twitter UDF column.
func hiringFixture(t *testing.T) (*Pipeline, *Node) {
	t.Helper()
	train := frame.MustNew(
		frame.NewIntSeries("person_id", []int64{1, 2, 3, 4}, nil),
		frame.NewIntSeries("job_id", []int64{10, 20, 10, 30}, nil),
		frame.NewStringSeries("letter", []string{"great", "poor", "strong", "weak"}, nil),
		frame.NewStringSeries("sentiment", []string{"positive", "negative", "positive", "negative"}, nil),
	)
	jobs := frame.MustNew(
		frame.NewIntSeries("job_id", []int64{10, 20, 30}, nil),
		frame.NewStringSeries("sector", []string{"healthcare", "finance", "healthcare"}, nil),
	)
	social := frame.MustNew(
		frame.NewIntSeries("person_id", []int64{1, 3, 4}, nil),
		frame.NewStringSeries("twitter", []string{"@a", "", "@d"}, []bool{true, false, true}),
	)
	p := New()
	tr := p.Source("train", train)
	jo := p.Source("jobs", jobs)
	so := p.Source("social", social)
	joined := p.Join(tr, jo, "job_id", frame.InnerJoin)
	joined = p.JoinOn(joined, so, []string{"person_id"}, []string{"person_id"}, frame.LeftJoin)
	filtered := p.Filter(joined, `sector == "healthcare"`, func(r frame.Row) bool {
		return r.Str("sector") == "healthcare"
	})
	withTw := p.MapCol(filtered, "has_twitter", frame.KindBool, func(r frame.Row) (frame.Value, error) {
		return frame.Bool(!r.IsNull("twitter")), nil
	})
	out := p.Project(withTw, "person_id", "letter", "sentiment", "has_twitter")
	return p, out
}

func TestPipelineRunShapes(t *testing.T) {
	p, out := hiringFixture(t)
	res, err := p.Run(out)
	if err != nil {
		t.Fatal(err)
	}
	// healthcare rows: persons 1, 3 (job 10) and 4 (job 30)
	if res.Frame.NumRows() != 3 {
		t.Fatalf("rows = %d\n%v", res.Frame.NumRows(), res.Frame)
	}
	cols := res.Frame.ColumnNames()
	if len(cols) != 4 || cols[3] != "has_twitter" {
		t.Errorf("columns = %v", cols)
	}
	ht := res.Frame.MustColumn("has_twitter")
	if !ht.Bool(0) || ht.Bool(1) || !ht.Bool(2) {
		t.Errorf("has_twitter wrong: %v", res.Frame)
	}
}

func TestPipelineProvenance(t *testing.T) {
	p, out := hiringFixture(t)
	res, err := p.Run(out)
	if err != nil {
		t.Fatal(err)
	}
	// first output row: person 1 = train[0] ⋈ jobs[0] ⋈ social[0]
	vars := res.Prov[0].Vars()
	want := map[prov.TupleID]bool{
		{Table: "train", Row: 0}:  true,
		{Table: "jobs", Row: 0}:   true,
		{Table: "social", Row: 0}: true,
	}
	if len(vars) != 3 {
		t.Fatalf("prov[0] = %v", res.Prov[0])
	}
	for _, v := range vars {
		if !want[v] {
			t.Errorf("unexpected var %v", v)
		}
	}
	// person 3 (train[2]) matched social[1] (null twitter but present row):
	// three source tuples
	vars1 := res.Prov[1].Vars()
	if len(vars1) != 3 || !res.Prov[1].DependsOn(prov.TupleID{Table: "social", Row: 1}) {
		t.Errorf("prov[1] = %v", res.Prov[1])
	}
}

func TestRenderPlanAndDot(t *testing.T) {
	p, out := hiringFixture(t)
	plan := p.RenderPlan(out)
	for _, want := range []string{"Project", "MapCol(has_twitter)", "Filter", "Join", "Source(train: 4 rows)"} {
		if !strings.Contains(plan, want) {
			t.Errorf("plan missing %q:\n%s", want, plan)
		}
	}
	dot := p.Dot(out)
	if !strings.Contains(dot, "digraph") || !strings.Contains(dot, "->") {
		t.Errorf("dot output unexpected:\n%s", dot)
	}
}

func TestRenderPlanSharedNode(t *testing.T) {
	p := New()
	src := p.Source("t", frame.MustNew(frame.NewIntSeries("a", []int64{1, 2}, nil)))
	c := p.Concat(src, src)
	plan := p.RenderPlan(c)
	if !strings.Contains(plan, "shared") {
		t.Errorf("shared node not marked:\n%s", plan)
	}
}

func TestConcatProvenance(t *testing.T) {
	p := New()
	a := p.Source("a", frame.MustNew(frame.NewIntSeries("x", []int64{1}, nil)))
	b := p.Source("b", frame.MustNew(frame.NewIntSeries("x", []int64{2}, nil)))
	res, err := p.Run(p.Concat(a, b))
	if err != nil {
		t.Fatal(err)
	}
	if res.Frame.NumRows() != 2 {
		t.Fatal("concat rows wrong")
	}
	if !res.Prov[0].DependsOn(prov.TupleID{Table: "a", Row: 0}) ||
		!res.Prov[1].DependsOn(prov.TupleID{Table: "b", Row: 0}) {
		t.Error("concat provenance wrong")
	}
}

func TestPipelineErrorsPropagate(t *testing.T) {
	p := New()
	src := p.Source("t", frame.MustNew(frame.NewIntSeries("a", []int64{1}, nil)))
	bad := p.Project(src, "missing_column")
	if _, err := p.Run(bad); err == nil {
		t.Error("expected error for missing column")
	}
}

func TestReplayRemovesSourceTuples(t *testing.T) {
	p, out := hiringFixture(t)
	// remove jobs[0] (the healthcare job 10): persons 1 and 3 disappear
	res, err := p.Replay(out, func(id prov.TupleID) bool {
		return id.Table == "jobs" && id.Row == 0
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Frame.NumRows() != 1 {
		t.Fatalf("rows after removal = %d\n%v", res.Frame.NumRows(), res.Frame)
	}
	if res.Frame.MustColumn("person_id").Int(0) != 4 {
		t.Error("wrong survivor")
	}
}

// Property: for random subsets of removed source tuples, the boolean
// evaluation of each output row's provenance polynomial predicts exactly
// whether that row survives an actual replay of the pipeline with those
// tuples removed. This is the correctness contract that pipeline-aware
// data-importance methods (Datascope) rely on.
func TestQuickProvenancePredictsReplay(t *testing.T) {
	buildFixture := func() (*Pipeline, *Node, map[string]int) {
		train := frame.MustNew(
			frame.NewIntSeries("person_id", []int64{1, 2, 3, 4, 5, 6}, nil),
			frame.NewIntSeries("job_id", []int64{10, 20, 10, 30, 20, 40}, nil),
			frame.NewIntSeries("score", []int64{5, 3, 4, 2, 5, 1}, nil),
		)
		jobs := frame.MustNew(
			frame.NewIntSeries("job_id", []int64{10, 20, 30, 40}, nil),
			frame.NewStringSeries("sector", []string{"health", "finance", "health", "retail"}, nil),
		)
		p := New()
		tr := p.Source("train", train)
		jo := p.Source("jobs", jobs)
		joined := p.Join(tr, jo, "job_id", frame.InnerJoin)
		filtered := p.Filter(joined, "score >= 2", func(r frame.Row) bool { return r.Int("score") >= 2 })
		out := p.Project(filtered, "person_id", "sector")
		sizes := map[string]int{"train": 6, "jobs": 4}
		return p, out, sizes
	}

	prop := func(seed int64) bool {
		p, out, sizes := buildFixture()
		full, err := p.Run(out)
		if err != nil {
			return false
		}
		r := rand.New(rand.NewSource(seed))
		removed := make(map[prov.TupleID]bool)
		for table, n := range sizes {
			for row := 0; row < n; row++ {
				if r.Float64() < 0.4 {
					removed[prov.TupleID{Table: table, Row: row}] = true
				}
			}
		}
		isRemoved := func(id prov.TupleID) bool { return removed[id] }
		replayed, err := p.Replay(out, isRemoved)
		if err != nil {
			return false
		}
		// predicted survivors via provenance
		var predicted []int64
		for i := 0; i < full.Frame.NumRows(); i++ {
			if full.Prov[i].EvalBool(func(id prov.TupleID) bool { return !removed[id] }) {
				predicted = append(predicted, full.Frame.MustColumn("person_id").Int(i))
			}
		}
		actual := replayed.Frame.MustColumn("person_id")
		if len(predicted) != actual.Len() {
			return false
		}
		for i, want := range predicted {
			if actual.Int(i) != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

func TestFuzzyJoinPipelineProvenance(t *testing.T) {
	letters := frame.MustNew(
		frame.NewStringSeries("sector", []string{"healthcare", "helthcare", "finanse"}, nil),
		frame.NewIntSeries("id", []int64{1, 2, 3}, nil),
	)
	sectors := frame.MustNew(
		frame.NewStringSeries("sector", []string{"healthcare", "finance"}, nil),
		frame.NewFloatSeries("growth", []float64{0.1, 0.2}, nil),
	)
	p := New()
	l := p.Source("letters", letters)
	s := p.Source("sectors", sectors)
	joined := p.FuzzyJoin(l, s, "sector", "sector", 2)
	res, err := p.Run(joined)
	if err != nil {
		t.Fatal(err)
	}
	if res.Frame.NumRows() != 3 {
		t.Fatalf("rows = %d\n%v", res.Frame.NumRows(), res.Frame)
	}
	if !strings.Contains(joined.Label(), "FuzzyJoin") {
		t.Errorf("label = %q", joined.Label())
	}
	// provenance mentions both sides
	if len(res.Prov[0].Vars()) != 2 {
		t.Errorf("fuzzy join provenance = %v", res.Prov[0])
	}
}

// Property: for fuzzy-join pipelines with all-matches semantics, provenance
// evaluation predicts replay survival exactly — the monotonicity argument
// for choosing that mode.
func TestQuickFuzzyJoinProvenancePredictsReplay(t *testing.T) {
	letters := frame.MustNew(
		frame.NewStringSeries("sector", []string{"healthcare", "helthcare", "finanse", "retail", "tech"}, nil),
		frame.NewIntSeries("id", []int64{1, 2, 3, 4, 5}, nil),
	)
	sectors := frame.MustNew(
		frame.NewStringSeries("sector", []string{"healthcare", "finance", "tech", "retale"}, nil),
		frame.NewFloatSeries("growth", []float64{0.1, 0.2, 0.3, 0.4}, nil),
	)
	prop := func(seed int64) bool {
		p := New()
		l := p.Source("letters", letters)
		s := p.Source("sectors", sectors)
		joined := p.FuzzyJoin(l, s, "sector", "sector", 2)
		full, err := p.Run(joined)
		if err != nil {
			return false
		}
		r := rand.New(rand.NewSource(seed))
		removed := make(map[prov.TupleID]bool)
		for row := 0; row < 5; row++ {
			if r.Float64() < 0.4 {
				removed[prov.TupleID{Table: "letters", Row: row}] = true
			}
		}
		for row := 0; row < 4; row++ {
			if r.Float64() < 0.4 {
				removed[prov.TupleID{Table: "sectors", Row: row}] = true
			}
		}
		replayed, err := p.Replay(joined, func(id prov.TupleID) bool { return removed[id] })
		if err != nil {
			return false
		}
		var predicted []int64
		for i := 0; i < full.Frame.NumRows(); i++ {
			if full.Prov[i].EvalBool(func(id prov.TupleID) bool { return !removed[id] }) {
				predicted = append(predicted, full.Frame.MustColumn("id").Int(i))
			}
		}
		actual := replayed.Frame.MustColumn("id")
		if len(predicted) != actual.Len() {
			return false
		}
		for i, want := range predicted {
			if actual.Int(i) != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
