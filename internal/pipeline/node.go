// Package pipeline implements provenance-tracked ML preprocessing pipelines:
// a DAG of relational operators (sources, filters, joins, projections,
// user-defined map columns, unions) that executes over frames while
// annotating every intermediate and output row with a provenance polynomial
// over source tuples (package prov). This is the substrate that enables
// pipeline-aware data debugging à la mlinspect/Datascope: importance scores
// computed on the training matrix can be pushed back through the provenance
// to the pipeline's source data, and inspections can screen intermediate
// distributions for issues while the pipeline runs.
package pipeline

import (
	"fmt"
	"sync"

	"nde/internal/frame"
)

// Kind enumerates the operator types of a pipeline node.
type Kind int

const (
	// KindSource is a named input table.
	KindSource Kind = iota
	// KindFilter keeps rows matching a predicate.
	KindFilter
	// KindJoin equi-joins two inputs.
	KindJoin
	// KindProject keeps a subset of columns.
	KindProject
	// KindMapCol appends a computed column (a user-defined function).
	KindMapCol
	// KindConcat vertically unions inputs with identical schemas.
	KindConcat
	// KindGroupAgg groups rows and computes aggregates.
	KindGroupAgg
	// KindFuzzyJoin joins on approximate string-key equality.
	KindFuzzyJoin
)

// String returns the operator name.
func (k Kind) String() string {
	switch k {
	case KindSource:
		return "Source"
	case KindFilter:
		return "Filter"
	case KindJoin:
		return "Join"
	case KindProject:
		return "Project"
	case KindMapCol:
		return "MapCol"
	case KindConcat:
		return "Concat"
	case KindGroupAgg:
		return "GroupAgg"
	case KindFuzzyJoin:
		return "FuzzyJoin"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Node is one operator in a pipeline DAG. Nodes are created through the
// Pipeline builder methods and are immutable once built.
type Node struct {
	id     int
	kind   Kind
	label  string
	inputs []*Node

	// operator-specific payloads
	sourceName  string
	sourceFrame *frame.Frame
	pred        func(frame.Row) bool
	leftOn      []string
	rightOn     []string
	joinKind    frame.JoinKind
	columns     []string
	mapCol      string
	mapKind     frame.Kind
	mapFn       func(frame.Row) (frame.Value, error)
	groupKeys   []string
	groupAggs   []frame.Agg
	fuzzyDist   int
}

// ID returns the node's position in its pipeline.
func (n *Node) ID() int { return n.id }

// Kind returns the operator type.
func (n *Node) Kind() Kind { return n.kind }

// Label returns the human-readable description used in plan rendering.
func (n *Node) Label() string { return n.label }

// Inputs returns the upstream nodes.
func (n *Node) Inputs() []*Node { return n.inputs }

// Pipeline is a builder and executor for an operator DAG. All nodes must be
// created through the same Pipeline value.
type Pipeline struct {
	nodes       []*Node
	inspections []Inspection

	collectStats bool
	statsMu      sync.Mutex
	lastRun      *RunStats
}

// New returns an empty pipeline.
func New() *Pipeline { return &Pipeline{} }

// AddInspection registers an inspection that observes every node's output
// during Run (mlinspect-style pipeline instrumentation).
func (p *Pipeline) AddInspection(i Inspection) { p.inspections = append(p.inspections, i) }

func (p *Pipeline) add(n *Node) *Node {
	n.id = len(p.nodes)
	p.nodes = append(p.nodes, n)
	return n
}

// Source adds a named input table. The name is the table component of the
// provenance variables assigned to its rows.
func (p *Pipeline) Source(name string, f *frame.Frame) *Node {
	return p.add(&Node{
		kind:        KindSource,
		label:       fmt.Sprintf("Source(%s: %d rows)", name, f.NumRows()),
		sourceName:  name,
		sourceFrame: f,
	})
}

// Filter adds a row filter with a display label such as
// `sector == "healthcare"`.
func (p *Pipeline) Filter(in *Node, label string, pred func(frame.Row) bool) *Node {
	return p.add(&Node{
		kind:   KindFilter,
		label:  fmt.Sprintf("Filter(%s)", label),
		inputs: []*Node{in},
		pred:   pred,
	})
}

// Join adds an equi-join of two inputs on a shared key column.
func (p *Pipeline) Join(left, right *Node, on string, kind frame.JoinKind) *Node {
	return p.JoinOn(left, right, []string{on}, []string{on}, kind)
}

// JoinOn adds an equi-join with explicit key lists per side.
func (p *Pipeline) JoinOn(left, right *Node, leftOn, rightOn []string, kind frame.JoinKind) *Node {
	how := "inner"
	if kind == frame.LeftJoin {
		how = "left"
	}
	return p.add(&Node{
		kind:     KindJoin,
		label:    fmt.Sprintf("Join(%s, on=%v)", how, leftOn),
		inputs:   []*Node{left, right},
		leftOn:   leftOn,
		rightOn:  rightOn,
		joinKind: kind,
	})
}

// Project adds a column projection.
func (p *Pipeline) Project(in *Node, cols ...string) *Node {
	return p.add(&Node{
		kind:    KindProject,
		label:   fmt.Sprintf("Project(%v)", cols),
		inputs:  []*Node{in},
		columns: cols,
	})
}

// MapCol adds a computed column via a user-defined function (for example
// `has_twitter = twitter IS NOT NULL`).
func (p *Pipeline) MapCol(in *Node, newCol string, kind frame.Kind, fn func(frame.Row) (frame.Value, error)) *Node {
	return p.add(&Node{
		kind:    KindMapCol,
		label:   fmt.Sprintf("MapCol(%s)", newCol),
		inputs:  []*Node{in},
		mapCol:  newCol,
		mapKind: kind,
		mapFn:   fn,
	})
}

// Concat adds a vertical union of inputs with identical schemas.
func (p *Pipeline) Concat(ins ...*Node) *Node {
	return p.add(&Node{
		kind:   KindConcat,
		label:  fmt.Sprintf("Concat(%d inputs)", len(ins)),
		inputs: ins,
	})
}

// FuzzyJoin adds an approximate string-key join tolerating up to maxDist
// edit operations between keys. The operator uses frame.FuzzyAllMatches —
// the monotone semantics under which provenance polynomials correctly
// predict pipeline replays (best-match joins are non-monotone: removing a
// tuple can create new matches).
func (p *Pipeline) FuzzyJoin(left, right *Node, leftOn, rightOn string, maxDist int) *Node {
	return p.add(&Node{
		kind:      KindFuzzyJoin,
		label:     fmt.Sprintf("FuzzyJoin(%s≈%s, dist<=%d)", leftOn, rightOn, maxDist),
		inputs:    []*Node{left, right},
		leftOn:    []string{leftOn},
		rightOn:   []string{rightOn},
		fuzzyDist: maxDist,
	})
}

// GroupAgg adds a group-by with aggregates. The provenance of each output
// group row is the SUM (disjunction) of its members' polynomials: the group
// row exists as long as any member survives. Note this is existence
// provenance — the aggregate's *value* depends on every surviving member,
// so removal what-ifs over aggregates are conservative (the row is kept but
// its value may shift).
func (p *Pipeline) GroupAgg(in *Node, keys []string, aggs []frame.Agg) *Node {
	return p.add(&Node{
		kind:      KindGroupAgg,
		label:     fmt.Sprintf("GroupAgg(by=%v, %d aggs)", keys, len(aggs)),
		inputs:    []*Node{in},
		groupKeys: keys,
		groupAggs: aggs,
	})
}
