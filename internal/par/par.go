// Package par provides the shared bounded worker pool used by the nde
// compute kernels: a chunked, dynamically scheduled parallel-for over an
// index range. It replaces the ad-hoc goroutine pools that used to live in
// individual packages so every hot path shares one scheduling policy and
// one set of observability hooks.
//
// Determinism contract: the pool never merges results itself. A body
// callback must write only to state that is private to its worker or to
// its item index (e.g. out[i] = ...), and callers perform any floating-
// point reduction serially in item order after the loop returns. Under
// that discipline every result is bit-for-bit identical for any worker
// count, including 1.
//
// Observability: when obs is enabled each loop records a span
// (par.for / par.for_blocks with the loop name, items and resolved worker
// count), sets the par_workers gauge, and observes per-worker item counts
// into the par_items_per_worker histogram. When obs is disabled the pool
// adds no instrumentation allocations.
package par

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"nde/internal/obs"
)

// Stats reports how one parallel loop actually ran.
type Stats struct {
	// Requested is the caller-supplied worker count (<= 0 = auto).
	Requested int
	// Workers is the resolved count actually used: GOMAXPROCS when auto,
	// clamped to the number of items.
	Workers int
	// Items is the loop length.
	Items int
	// PerWorker[w] is the number of items worker w processed; its spread
	// shows pool utilization balance.
	PerWorker []int
	// Wall is the end-to-end time of the loop.
	Wall time.Duration
}

// Workers resolves a requested worker count: <= 0 means GOMAXPROCS, the
// result is clamped to items, and is never below 1.
func Workers(requested, items int) int {
	w := requested
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > items {
		w = items
	}
	if w < 1 {
		w = 1
	}
	return w
}

// For runs body(worker, i) for every i in [0, items) on a bounded worker
// pool. Scheduling is dynamic over contiguous chunks (items/(workers*8),
// at least 1), so uneven per-item costs still balance. worker is in
// [0, Workers) and identifies the goroutine, letting bodies reuse
// per-worker scratch buffers.
func For(name string, requested, items int, body func(worker, i int)) *Stats {
	st := &Stats{Requested: requested, Items: items, Workers: Workers(requested, items)}
	st.PerWorker = make([]int, st.Workers)
	chunk := items / (st.Workers * chunksPerWorker)
	if chunk < 1 {
		chunk = 1
	}
	var sp *obs.Span
	if obs.Enabled() {
		sp = obs.StartSpan("par.for")
		sp.SetStr("name", name).
			SetInt("items", int64(items)).
			SetInt("workers", int64(st.Workers)).
			SetInt("block", int64(chunk))
		obs.SetGauge("par_workers", float64(st.Workers))
	}
	start := time.Now()
	if items > 0 {
		if st.Workers == 1 {
			// inline fast path: no goroutines, no atomics, no extra allocs
			for i := 0; i < items; i++ {
				body(0, i)
			}
			st.PerWorker[0] = items
		} else {
			var next atomic.Int64
			var wg sync.WaitGroup
			for w := 0; w < st.Workers; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					for {
						lo := int(next.Add(int64(chunk))) - chunk
						if lo >= items {
							return
						}
						hi := lo + chunk
						if hi > items {
							hi = items
						}
						for i := lo; i < hi; i++ {
							body(w, i)
						}
						st.PerWorker[w] += hi - lo // w-private slot; published by wg.Wait
					}
				}(w)
			}
			wg.Wait()
		}
	}
	st.Wall = time.Since(start)
	if obs.Enabled() {
		for _, cnt := range st.PerWorker {
			obs.ObserveWith("par_items_per_worker", float64(cnt), obs.ExpBuckets(1, 2, 13))
		}
	}
	if sp != nil {
		sp.End()
	}
	return st
}

// chunksPerWorker controls dynamic-scheduling granularity: each worker's
// share is split into this many chunks so stragglers can be stolen.
const chunksPerWorker = 8

// ForErr runs body(worker, i) for every i in [0, items) on the pool and
// collects per-item errors. Every item runs even when an early one fails
// (bodies must already tolerate that for the no-error determinism contract
// to hold); the returned error is the FIRST failing item's error in item
// order, so which error a caller sees does not depend on worker count or
// scheduling.
func ForErr(name string, requested, items int, body func(worker, i int) error) (*Stats, error) {
	errs := make([]error, items)
	st := For(name, requested, items, func(w, i int) {
		errs[i] = body(w, i)
	})
	for _, err := range errs {
		if err != nil {
			return st, err
		}
	}
	return st, nil
}

// ForBlocks runs body(worker, lo, hi) over contiguous blocks of [0, items)
// of the given block size (the last block may be shorter), dynamically
// scheduled across the pool. Use it when the body wants to amortize
// per-block setup (cache tiles, scratch buffers) across several items.
func ForBlocks(name string, requested, items, block int, body func(worker, lo, hi int)) *Stats {
	st := &Stats{Requested: requested, Items: items, Workers: Workers(requested, items)}
	st.PerWorker = make([]int, st.Workers)
	if block < 1 {
		block = 1
	}
	var sp *obs.Span
	if obs.Enabled() {
		sp = obs.StartSpan("par.for")
		sp.SetStr("name", name).
			SetInt("items", int64(items)).
			SetInt("workers", int64(st.Workers)).
			SetInt("block", int64(block))
		obs.SetGauge("par_workers", float64(st.Workers))
	}
	start := time.Now()
	if items > 0 {
		if st.Workers == 1 {
			// inline fast path: no goroutines, no atomics
			for lo := 0; lo < items; lo += block {
				hi := lo + block
				if hi > items {
					hi = items
				}
				body(0, lo, hi)
			}
			st.PerWorker[0] = items
		} else {
			var next atomic.Int64
			var wg sync.WaitGroup
			for w := 0; w < st.Workers; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					for {
						lo := int(next.Add(int64(block))) - block
						if lo >= items {
							return
						}
						hi := lo + block
						if hi > items {
							hi = items
						}
						body(w, lo, hi)
						st.PerWorker[w] += hi - lo // w-private slot; published by wg.Wait
					}
				}(w)
			}
			wg.Wait()
		}
	}
	st.Wall = time.Since(start)
	if obs.Enabled() {
		for _, cnt := range st.PerWorker {
			obs.ObserveWith("par_items_per_worker", float64(cnt), obs.ExpBuckets(1, 2, 13))
		}
	}
	if sp != nil {
		sp.End()
	}
	return st
}
