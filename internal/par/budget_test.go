package par

import (
	"context"
	"errors"
	"runtime"
	"sync"
	"testing"
	"time"

	"nde/internal/obs"
)

// waitUntil spins (yielding) until cond holds or the deadline hits.
func waitUntil(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timeout waiting for %s", what)
		}
		runtime.Gosched()
	}
}

// With all slots busy and a zero queue, the next caller is shed
// immediately; a Release frees the slot for the next Acquire.
func TestBudgetShedAtZeroQueue(t *testing.T) {
	b := NewBudget("bt_shed", 2, 0)
	ctx := context.Background()
	if err := b.Acquire(ctx); err != nil {
		t.Fatal(err)
	}
	if err := b.Acquire(ctx); err != nil {
		t.Fatal(err)
	}
	if err := b.Acquire(ctx); !errors.Is(err, ErrBudgetExhausted) {
		t.Fatalf("third acquire err = %v, want ErrBudgetExhausted", err)
	}
	if n := b.InUse(); n != 2 {
		t.Errorf("in use = %d, want 2", n)
	}
	b.Release()
	if err := b.Acquire(ctx); err != nil {
		t.Fatalf("acquire after release: %v", err)
	}
	b.Release()
	b.Release()
}

// Callers beyond the slots but within the queue bound wait for a slot;
// callers beyond slots+queue are shed.
func TestBudgetQueueing(t *testing.T) {
	obs.Reset()
	obs.Enable()
	defer func() {
		obs.Disable()
		obs.Reset()
	}()
	b := NewBudget("bt_queue", 1, 2)
	ctx := context.Background()
	if err := b.Acquire(ctx); err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	queuedErrs := make([]error, 2)
	for i := range queuedErrs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			queuedErrs[i] = b.Acquire(ctx)
			if queuedErrs[i] == nil {
				b.Release()
			}
		}(i)
	}
	waitUntil(t, "two queued callers", func() bool { return b.QueueDepth() == 2 })

	// queue is full: the next caller sheds without blocking
	if err := b.Acquire(ctx); !errors.Is(err, ErrBudgetExhausted) {
		t.Fatalf("overflow acquire err = %v, want ErrBudgetExhausted", err)
	}

	b.Release() // both queued callers drain through the single slot
	wg.Wait()
	for i, err := range queuedErrs {
		if err != nil {
			t.Errorf("queued caller %d: %v", i, err)
		}
	}
	if n := b.InUse(); n != 0 {
		t.Errorf("in use = %d after drain, want 0", n)
	}
	if n := b.QueueDepth(); n != 0 {
		t.Errorf("queue depth = %d after drain, want 0", n)
	}
	if n := obs.Default().Counter("bt_queue_shed_total").Value(); n != 1 {
		t.Errorf("shed_total = %d, want 1", n)
	}
	if n := obs.Default().Counter("bt_queue_admitted_total").Value(); n != 3 {
		t.Errorf("admitted_total = %d, want 3", n)
	}
}

// A queued caller whose context ends gets ctx.Err, not a slot.
func TestBudgetContextCancel(t *testing.T) {
	b := NewBudget("bt_ctx", 1, 1)
	if err := b.Acquire(context.Background()); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() { errc <- b.Acquire(ctx) }()
	waitUntil(t, "queued caller", func() bool { return b.QueueDepth() == 1 })
	cancel()
	if err := <-errc; !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled acquire err = %v, want context.Canceled", err)
	}
	b.Release()
	// the canceled caller must not have consumed the slot
	if err := b.Acquire(context.Background()); err != nil {
		t.Fatalf("acquire after cancel: %v", err)
	}
	b.Release()
}

// TryAcquire never queues.
func TestBudgetTryAcquire(t *testing.T) {
	b := NewBudget("bt_try", 1, 8)
	if !b.TryAcquire() {
		t.Fatal("first TryAcquire failed")
	}
	if b.TryAcquire() {
		t.Fatal("second TryAcquire succeeded past the slot bound")
	}
	b.Release()
	if !b.TryAcquire() {
		t.Fatal("TryAcquire after release failed")
	}
	b.Release()
}

// A nil budget admits everything; Release without Acquire panics on a
// real budget.
func TestBudgetNilAndMisuse(t *testing.T) {
	var b *Budget
	if err := b.Acquire(context.Background()); err != nil {
		t.Errorf("nil budget Acquire: %v", err)
	}
	if !b.TryAcquire() {
		t.Error("nil budget TryAcquire = false")
	}
	b.Release()
	if b.InUse() != 0 || b.QueueDepth() != 0 || b.Slots() != 0 {
		t.Error("nil budget accessors not zero")
	}

	defer func() {
		if recover() == nil {
			t.Error("Release without Acquire did not panic")
		}
	}()
	NewBudget("bt_misuse", 1, 0).Release()
}

// Hammer the budget from many goroutines: admissions never exceed the
// slot bound and the shed path stays consistent (run under -race).
func TestBudgetConcurrentStress(t *testing.T) {
	b := NewBudget("bt_stress", 3, 4)
	var (
		wg      sync.WaitGroup
		mu      sync.Mutex
		cur     int
		maxSeen int
	)
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				if err := b.Acquire(context.Background()); err != nil {
					if !errors.Is(err, ErrBudgetExhausted) {
						t.Errorf("acquire: %v", err)
					}
					continue
				}
				mu.Lock()
				cur++
				if cur > maxSeen {
					maxSeen = cur
				}
				mu.Unlock()
				runtime.Gosched()
				mu.Lock()
				cur--
				mu.Unlock()
				b.Release()
			}
		}()
	}
	wg.Wait()
	if maxSeen > 3 {
		t.Errorf("max concurrent admissions = %d, want <= 3", maxSeen)
	}
	if b.InUse() != 0 || b.QueueDepth() != 0 {
		t.Errorf("in use = %d, queue = %d after drain, want 0, 0", b.InUse(), b.QueueDepth())
	}
}
