package par

import (
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"
	"testing/quick"

	"nde/internal/obs"
)

func TestWorkersResolution(t *testing.T) {
	if got := Workers(0, 100); got != runtime.GOMAXPROCS(0) {
		t.Errorf("auto workers = %d, want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
	if got := Workers(-3, 100); got != runtime.GOMAXPROCS(0) {
		t.Errorf("negative workers = %d, want GOMAXPROCS", got)
	}
	if got := Workers(8, 3); got != 3 {
		t.Errorf("oversubscribed workers = %d, want 3", got)
	}
	if got := Workers(8, 0); got != 1 {
		t.Errorf("zero-item workers = %d, want 1", got)
	}
}

func TestForVisitsEveryItemOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 7, 100} {
		const n = 253
		var visits [n]int32
		st := For("test", workers, n, func(_, i int) {
			atomic.AddInt32(&visits[i], 1)
		})
		for i, v := range visits {
			if v != 1 {
				t.Fatalf("workers=%d: item %d visited %d times", workers, i, v)
			}
		}
		if st.Items != n {
			t.Errorf("items = %d, want %d", st.Items, n)
		}
		total := 0
		for _, c := range st.PerWorker {
			total += c
		}
		if total != n {
			t.Errorf("per-worker sum = %d, want %d", total, n)
		}
		if st.Wall <= 0 {
			t.Errorf("wall = %v, want > 0", st.Wall)
		}
	}
}

func TestForBlocksCoversRangeExactly(t *testing.T) {
	prop := func(seed int64) bool {
		items := int(seed%97 + 1)
		if items < 0 {
			items = -items + 1
		}
		block := int(seed%13) + 1
		if block < 1 {
			block = 1
		}
		workers := int(seed%5) + 1
		if workers < 1 {
			workers = 1
		}
		var visits = make([]int32, items)
		ForBlocks("test_blocks", workers, items, block, func(_, lo, hi int) {
			if hi-lo > block || lo < 0 || hi > items || lo >= hi {
				t.Fatalf("bad block [%d,%d) for block size %d", lo, hi, block)
			}
			for i := lo; i < hi; i++ {
				atomic.AddInt32(&visits[i], 1)
			}
		})
		for _, v := range visits {
			if v != 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestForZeroItems(t *testing.T) {
	called := false
	st := For("empty", 4, 0, func(_, _ int) { called = true })
	if called {
		t.Error("body called for zero items")
	}
	if st.Workers != 1 || st.Items != 0 {
		t.Errorf("stats = %+v", st)
	}
}

// Deterministic per-item outputs reduced serially must be identical for
// every worker count — the pool's core contract.
func TestForDeterministicReduction(t *testing.T) {
	const n = 500
	ref := make([]float64, n)
	For("det_ref", 1, n, func(_, i int) {
		ref[i] = float64(i) * 1.000000001
	})
	refSum := 0.0
	for _, v := range ref {
		refSum += v
	}
	for _, workers := range []int{2, 3, 16} {
		out := make([]float64, n)
		For("det", workers, n, func(_, i int) {
			out[i] = float64(i) * 1.000000001
		})
		sum := 0.0
		for _, v := range out {
			sum += v
		}
		if sum != refSum {
			t.Errorf("workers=%d: sum %v != %v", workers, sum, refSum)
		}
	}
}

// With obs enabled the pool exports the worker gauge and the per-worker
// utilization histogram.
func TestForObsWiring(t *testing.T) {
	obs.Enable()
	defer obs.Disable()
	defer obs.Reset()
	obs.Reset()
	st := For("obs_loop", 2, 10, func(_, _ int) {})
	if got := obs.Default().Gauge("par_workers").Value(); got != float64(st.Workers) {
		t.Errorf("par_workers gauge = %v, want %d", got, st.Workers)
	}
	h := obs.Default().Histogram("par_items_per_worker", nil)
	if got := h.Count(); got != int64(st.Workers) {
		t.Errorf("histogram count = %d, want %d", got, st.Workers)
	}
	if got := h.Sum(); got != 10 {
		t.Errorf("histogram sum = %v, want 10", got)
	}
}

// With obs disabled, For must not allocate beyond its own small constant
// Stats bookkeeping — in particular, none of the span/gauge/histogram
// instrumentation may allocate while obs is off.
func TestForObsOffAllocations(t *testing.T) {
	allocs := testing.AllocsPerRun(100, func() {
		For("alloc_probe", 1, 8, func(_, _ int) {})
	})
	if allocs > 3 {
		t.Errorf("obs-off For allocates %v objects per run, want <= 3", allocs)
	}
}

// ForErr must return the first failing item's error IN ITEM ORDER for any
// worker count, while still visiting every item.
func TestForErrDeterministicFirstError(t *testing.T) {
	for _, workers := range []int{1, 3, 8} {
		visited := make([]int32, 20)
		_, err := ForErr("errprobe", workers, 20, func(_, i int) error {
			atomic.AddInt32(&visited[i], 1)
			if i == 7 || i == 13 {
				return fmt.Errorf("item %d failed", i)
			}
			return nil
		})
		if err == nil || err.Error() != "item 7 failed" {
			t.Errorf("workers=%d: err = %v, want item 7's error", workers, err)
		}
		for i, v := range visited {
			if v != 1 {
				t.Errorf("workers=%d: item %d visited %d times", workers, i, v)
			}
		}
	}
	if _, err := ForErr("ok", 2, 5, func(_, _ int) error { return nil }); err != nil {
		t.Errorf("no-error loop returned %v", err)
	}
}
