package par

import (
	"context"
	"errors"
	"sync/atomic"

	"nde/internal/obs"
)

// ErrBudgetExhausted reports that a Budget had no free slot and its wait
// queue was already full. A server maps it to 429 Too Many Requests.
var ErrBudgetExhausted = errors.New("par: concurrency budget exhausted")

// Budget is an admission controller for request-scoped work sitting in
// front of the worker pool: at most slots admissions run concurrently,
// and at most queue callers wait for a slot. Anything beyond that is shed
// immediately with ErrBudgetExhausted instead of piling up goroutines —
// the pool itself bounds CPU, the budget bounds *latency* by refusing
// work it could only serve late.
//
// A nil *Budget admits everything and is valid to call, so wiring is
// optional.
//
// Metrics (no-op while obs is off):
//
//	<name>_admitted_total  callers that got a slot (fast path or queued)
//	<name>_shed_total      callers rejected with ErrBudgetExhausted
//	<name>_in_use          gauge: slots currently held
//	<name>_queue_depth     gauge: callers currently waiting
type Budget struct {
	name   string
	slots  chan struct{}
	queued atomic.Int64
	max    int // queue bound

	// Metric names, precomputed so the obs calls on the admission fast
	// path stay zero-alloc while obs is off (enforced by nde-lint
	// obsguard: concatenating at the call site would allocate on every
	// Acquire/TryAcquire even with telemetry disabled).
	mAdmitted, mShed, mInUse, mQueueDepth string
}

// NewBudget creates a budget of the given concurrency slots (minimum 1)
// and wait-queue bound (minimum 0; 0 sheds as soon as all slots are
// busy). Metrics are exported under the name prefix.
func NewBudget(name string, slots, queue int) *Budget {
	if slots < 1 {
		slots = 1
	}
	if queue < 0 {
		queue = 0
	}
	return &Budget{
		name:        name,
		slots:       make(chan struct{}, slots),
		max:         queue,
		mAdmitted:   name + "_admitted_total",
		mShed:       name + "_shed_total",
		mInUse:      name + "_in_use",
		mQueueDepth: name + "_queue_depth",
	}
}

// Acquire takes a slot, waiting in the bounded queue if none is free.
// It returns ErrBudgetExhausted when the queue is full, or ctx.Err() if
// the context ends first. Every successful Acquire must be paired with
// exactly one Release.
func (b *Budget) Acquire(ctx context.Context) error {
	if b == nil {
		return nil
	}
	// Fast path: a slot is free, skip the queue accounting entirely.
	select {
	case b.slots <- struct{}{}:
		b.admitted()
		return nil
	default:
	}
	if q := b.queued.Add(1); int(q) > b.max {
		b.queued.Add(-1)
		obs.Inc(b.mShed)
		return ErrBudgetExhausted
	}
	b.gauges()
	defer func() {
		b.queued.Add(-1)
		b.gauges()
	}()
	select {
	case b.slots <- struct{}{}:
		b.admitted()
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// TryAcquire takes a slot only if one is free right now, never queueing.
func (b *Budget) TryAcquire() bool {
	if b == nil {
		return true
	}
	select {
	case b.slots <- struct{}{}:
		b.admitted()
		return true
	default:
		obs.Inc(b.mShed)
		return false
	}
}

// Release returns a slot taken by a successful Acquire or TryAcquire.
func (b *Budget) Release() {
	if b == nil {
		return
	}
	select {
	case <-b.slots:
		b.gauges()
	default:
		panic("par: Budget.Release without a matching Acquire")
	}
}

// InUse returns the number of slots currently held.
func (b *Budget) InUse() int {
	if b == nil {
		return 0
	}
	return len(b.slots)
}

// QueueDepth returns the number of callers currently waiting for a slot.
func (b *Budget) QueueDepth() int {
	if b == nil {
		return 0
	}
	return int(b.queued.Load())
}

// Slots returns the concurrency bound.
func (b *Budget) Slots() int {
	if b == nil {
		return 0
	}
	return cap(b.slots)
}

func (b *Budget) admitted() {
	obs.Inc(b.mAdmitted)
	b.gauges()
}

func (b *Budget) gauges() {
	if !obs.Enabled() {
		return
	}
	obs.SetGauge(b.mInUse, float64(len(b.slots)))
	obs.SetGauge(b.mQueueDepth, float64(b.queued.Load()))
}
