package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// LedgerSchemaVersion identifies the JSONL record layout; bump it when a
// field changes meaning. Consumers should skip records with a newer
// version than they understand.
const LedgerSchemaVersion = 1

// LedgerRecord is one line of the run ledger — an append-only JSONL event
// stream describing a run at facade-call granularity. Three record types
// share the struct:
//
//   - "header": written once when the ledger opens; carries run metadata
//     (cmd, Go version, GOMAXPROCS, git SHA, pid, start time).
//   - "op": one record per facade call — op name, wall-clock duration,
//     row count, worker count, neighbor-index cache outcome, and the
//     nderr sentinel class when the call failed ("" / omitted = success).
//   - "slow_span": a warning emitted by Span.End when a span exceeds the
//     configured slow-span threshold.
//
// Unused fields are omitted from the JSON, so each line stays compact.
type LedgerRecord struct {
	Type string `json:"t"`
	Time string `json:"time,omitempty"` // RFC3339Nano UTC, stamped on Append

	// op / slow_span fields
	Op      string  `json:"op,omitempty"`
	MS      float64 `json:"ms,omitempty"`
	Rows    int     `json:"rows,omitempty"`
	Workers int     `json:"workers,omitempty"`
	Cache   string  `json:"cache,omitempty"` // "hit" | "miss" | ""
	Err     string  `json:"err,omitempty"`   // nderr class; "" = success
	// slow_span only: the threshold that was exceeded
	ThresholdMS float64 `json:"threshold_ms,omitempty"`

	// header fields
	V          int    `json:"v,omitempty"`
	Cmd        string `json:"cmd,omitempty"`
	Go         string `json:"go,omitempty"`
	GOMAXPROCS int    `json:"gomaxprocs,omitempty"`
	Git        string `json:"git,omitempty"`
	PID        int    `json:"pid,omitempty"`
	Start      string `json:"start,omitempty"`
}

// LedgerMeta is the run metadata stamped into the header record.
type LedgerMeta struct {
	// Cmd names the producing binary ("nde-pipeline", "bench", ...).
	Cmd string
	// Git is the current commit SHA; leave empty to auto-detect via
	// GitSHA().
	Git string
}

// Ledger appends LedgerRecords as JSONL to an underlying writer. Appends
// are serialized by a mutex and each record is written in a single Write
// call, so concurrent producers never interleave partial lines and a
// killed process leaves at worst a truncated final line, never corrupted
// earlier ones. The zero value is not usable; use NewLedger or OpenLedger.
type Ledger struct {
	mu     sync.Mutex
	w      io.Writer
	closer io.Closer // non-nil when the ledger owns the file
	err    error     // first write error; later appends are dropped
}

// NewLedger wraps w in a ledger and writes the header record. The caller
// keeps ownership of w (Close does not close it).
func NewLedger(w io.Writer, meta LedgerMeta) *Ledger {
	l := &Ledger{w: w}
	l.writeHeader(meta)
	return l
}

// OpenLedger creates (truncating) the JSONL file at path and writes the
// header record. Close closes the file.
func OpenLedger(path string, meta LedgerMeta) (*Ledger, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, fmt.Errorf("obs: opening ledger: %w", err)
	}
	l := &Ledger{w: f, closer: f}
	l.writeHeader(meta)
	return l, nil
}

func (l *Ledger) writeHeader(meta LedgerMeta) {
	git := meta.Git
	if git == "" {
		git = GitSHA()
	}
	l.Append(LedgerRecord{
		Type:       "header",
		V:          LedgerSchemaVersion,
		Cmd:        meta.Cmd,
		Go:         runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Git:        git,
		PID:        os.Getpid(),
		Start:      time.Now().UTC().Format(time.RFC3339Nano),
	})
}

// Append writes one record as a single JSONL line, stamping rec.Time if
// unset. Append never fails the caller: the first write error is stored
// and subsequent records are silently dropped (telemetry must not take
// down the run it observes); Close reports it.
func (l *Ledger) Append(rec LedgerRecord) {
	if l == nil {
		return
	}
	if rec.Time == "" && rec.Type != "header" {
		rec.Time = time.Now().UTC().Format(time.RFC3339Nano)
	}
	line, err := json.Marshal(rec)
	if err != nil { // unreachable for this struct; defensive
		return
	}
	line = append(line, '\n')
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.err != nil {
		return
	}
	if _, err := l.w.Write(line); err != nil {
		l.err = fmt.Errorf("obs: ledger write: %w", err)
	}
}

// Close releases the underlying file (when the ledger owns one) and
// returns the first write error encountered, if any. Safe to call twice.
func (l *Ledger) Close() error {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	err := l.err
	if l.closer != nil {
		if cerr := l.closer.Close(); cerr != nil && err == nil {
			err = fmt.Errorf("obs: closing ledger: %w", cerr)
		}
		l.closer = nil
	}
	return err
}

// activeLedger is the process-wide ledger that RecordOp and the slow-span
// hook write to; nil means disabled. A single atomic pointer load keeps
// the disabled path allocation-free, mirroring the Enabled() contract.
var activeLedger atomic.Pointer[Ledger]

// SetLedger installs l as the process-wide run ledger (nil disables).
// The previous ledger, if any, is returned so the caller can Close it.
func SetLedger(l *Ledger) *Ledger { return activeLedger.Swap(l) }

// ActiveLedger returns the installed run ledger, or nil when disabled.
// It is a single atomic load, safe to call on hot paths.
func ActiveLedger() *Ledger { return activeLedger.Load() }

// RecordOp appends one "op" record to the active ledger. No-op (and
// allocation-free) when no ledger is installed, so facade entry points can
// call it unconditionally.
func RecordOp(op string, d time.Duration, rows, workers int, cache, errClass string) {
	l := ActiveLedger()
	if l == nil {
		return
	}
	l.Append(LedgerRecord{
		Type:    "op",
		Op:      op,
		MS:      durMS(d),
		Rows:    rows,
		Workers: workers,
		Cache:   cache,
		Err:     errClass,
	})
}

// slowSpanNanos is the slow-span warning threshold; 0 disables the hook.
var slowSpanNanos atomic.Int64

// SetSlowSpanThreshold configures the slow-span log: any span whose wall
// time reaches d emits a "slow_span" warning record into the active run
// ledger when it ends. d <= 0 disables the hook.
func SetSlowSpanThreshold(d time.Duration) {
	if d < 0 {
		d = 0
	}
	slowSpanNanos.Store(int64(d))
}

// maybeRecordSlowSpan is called from Span.End for every real (non-noop)
// span. The common path — no threshold configured — is one atomic load.
func maybeRecordSlowSpan(name string, wall time.Duration) {
	th := slowSpanNanos.Load()
	if th <= 0 || wall < time.Duration(th) {
		return
	}
	l := ActiveLedger()
	if l == nil {
		return
	}
	l.Append(LedgerRecord{
		Type:        "slow_span",
		Op:          name,
		MS:          durMS(wall),
		ThresholdMS: durMS(time.Duration(th)),
	})
}

// durMS converts a duration to fractional milliseconds for JSON.
func durMS(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }

// GitSHA best-effort resolves the current commit without shelling out: it
// walks up from the working directory to the first .git/HEAD and follows
// one level of symbolic ref. Returns "" when not in a git checkout (or in
// exotic layouts like worktrees with packed refs), which the header
// records as an absent field — telemetry stays best-effort.
func GitSHA() string {
	dir, err := os.Getwd()
	if err != nil {
		return ""
	}
	for {
		head, err := os.ReadFile(filepath.Join(dir, ".git", "HEAD"))
		if err == nil {
			s := strings.TrimSpace(string(head))
			if ref, ok := strings.CutPrefix(s, "ref: "); ok {
				b, err := os.ReadFile(filepath.Join(dir, ".git", ref))
				if err != nil {
					return ""
				}
				return strings.TrimSpace(string(b))
			}
			return s
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return ""
		}
		dir = parent
	}
}
