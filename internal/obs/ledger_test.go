package obs

import (
	"bufio"
	"bytes"
	"encoding/json"
	"os"
	"strings"
	"sync"
	"testing"
	"time"
)

// decodeLedger parses a JSONL buffer into records, failing on any
// malformed line — the "no empty-file corruption" contract.
func decodeLedger(t *testing.T, b *bytes.Buffer) []LedgerRecord {
	t.Helper()
	var recs []LedgerRecord
	sc := bufio.NewScanner(bytes.NewReader(b.Bytes()))
	for sc.Scan() {
		line := sc.Text()
		if strings.TrimSpace(line) == "" {
			t.Fatalf("ledger contains a blank line")
		}
		var r LedgerRecord
		if err := json.Unmarshal([]byte(line), &r); err != nil {
			t.Fatalf("malformed ledger line %q: %v", line, err)
		}
		recs = append(recs, r)
	}
	return recs
}

// validateLedgerSchema asserts the documented record schema (README
// "Run ledger"): every line has a known type, headers carry run metadata,
// op records carry an op name and a non-negative duration.
func validateLedgerSchema(t *testing.T, recs []LedgerRecord) {
	t.Helper()
	if len(recs) == 0 {
		t.Fatalf("ledger has no records")
	}
	if recs[0].Type != "header" {
		t.Fatalf("first record type = %q, want header", recs[0].Type)
	}
	for i, r := range recs {
		switch r.Type {
		case "header":
			if i != 0 {
				t.Errorf("record %d: duplicate header", i)
			}
			if r.V != LedgerSchemaVersion {
				t.Errorf("header v = %d, want %d", r.V, LedgerSchemaVersion)
			}
			if r.Go == "" || r.GOMAXPROCS < 1 || r.PID == 0 || r.Start == "" {
				t.Errorf("header missing run metadata: %+v", r)
			}
			if _, err := time.Parse(time.RFC3339Nano, r.Start); err != nil {
				t.Errorf("header start %q not RFC3339: %v", r.Start, err)
			}
		case "op":
			if r.Op == "" {
				t.Errorf("record %d: op record without op name", i)
			}
			if r.MS < 0 {
				t.Errorf("record %d: negative duration %v", i, r.MS)
			}
			if r.Time == "" {
				t.Errorf("record %d: op record without timestamp", i)
			}
			if r.Cache != "" && r.Cache != "hit" && r.Cache != "miss" {
				t.Errorf("record %d: cache = %q, want hit/miss/empty", i, r.Cache)
			}
		case "slow_span":
			if r.Op == "" || r.MS < r.ThresholdMS {
				t.Errorf("record %d: bad slow_span %+v", i, r)
			}
		default:
			t.Errorf("record %d: unknown type %q", i, r.Type)
		}
	}
}

func TestLedgerHeaderAndOps(t *testing.T) {
	var buf bytes.Buffer
	l := NewLedger(&buf, LedgerMeta{Cmd: "test-cmd", Git: "deadbeef"})
	RecordOp("noledger", time.Millisecond, 1, 0, "", "") // not installed yet: dropped
	prev := SetLedger(l)
	defer SetLedger(prev)

	RecordOp("KNNShapleyValues", 12*time.Millisecond, 180, 4, "miss", "")
	RecordOp("WhatIfParallel", 3*time.Millisecond, 8, 0, "", "empty_input")
	SetLedger(prev)
	if err := l.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}

	recs := decodeLedger(t, &buf)
	validateLedgerSchema(t, recs)
	if len(recs) != 3 {
		t.Fatalf("got %d records, want 3 (header + 2 ops):\n%s", len(recs), buf.String())
	}
	if recs[0].Cmd != "test-cmd" || recs[0].Git != "deadbeef" {
		t.Errorf("header = %+v", recs[0])
	}
	op := recs[1]
	if op.Op != "KNNShapleyValues" || op.Rows != 180 || op.Workers != 4 || op.Cache != "miss" || op.Err != "" {
		t.Errorf("op record = %+v", op)
	}
	if op.MS < 11.9 || op.MS > 12.1 {
		t.Errorf("op ms = %v, want ~12", op.MS)
	}
	if recs[2].Err != "empty_input" {
		t.Errorf("error record class = %q", recs[2].Err)
	}
}

// A ledger with no op records — e.g. obs.Enable toggled too late, or the
// run failed before the first facade call — is still a valid JSONL file
// with exactly the header line.
func TestLedgerEmptyRunStillValid(t *testing.T) {
	var buf bytes.Buffer
	l := NewLedger(&buf, LedgerMeta{Cmd: "noop"})
	if err := l.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	recs := decodeLedger(t, &buf)
	validateLedgerSchema(t, recs)
	if len(recs) != 1 {
		t.Fatalf("got %d records, want header only", len(recs))
	}
	if !strings.HasSuffix(buf.String(), "\n") {
		t.Errorf("ledger does not end in a newline")
	}
}

func TestLedgerConcurrentAppends(t *testing.T) {
	var buf bytes.Buffer
	l := NewLedger(&buf, LedgerMeta{Cmd: "conc"})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				l.Append(LedgerRecord{Type: "op", Op: "op", MS: 1})
			}
		}()
	}
	wg.Wait()
	recs := decodeLedger(t, &buf) // fails on any interleaved partial line
	if len(recs) != 1+8*50 {
		t.Fatalf("got %d records, want %d", len(recs), 1+8*50)
	}
	validateLedgerSchema(t, recs)
}

func TestLedgerOpenLedgerFile(t *testing.T) {
	path := t.TempDir() + "/run.jsonl"
	l, err := OpenLedger(path, LedgerMeta{Cmd: "file"})
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	l.Append(LedgerRecord{Type: "op", Op: "x", MS: 0.5})
	if err := l.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	if err := l.Close(); err != nil {
		t.Fatalf("double close: %v", err)
	}
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read back: %v", err)
	}
	recs := decodeLedger(t, bytes.NewBuffer(b))
	validateLedgerSchema(t, recs)
	if len(recs) != 2 {
		t.Fatalf("got %d records, want 2", len(recs))
	}
}

func TestSlowSpanLedgerWarning(t *testing.T) {
	Enable()
	defer Disable()
	defer Reset()
	Reset()
	var buf bytes.Buffer
	l := NewLedger(&buf, LedgerMeta{Cmd: "slow"})
	prev := SetLedger(l)
	defer SetLedger(prev)
	SetSlowSpanThreshold(time.Millisecond)
	defer SetSlowSpanThreshold(0)

	fast := StartSpan("fast.op")
	fast.End() // under threshold: no record
	slow := StartSpan("slow.op")
	time.Sleep(3 * time.Millisecond)
	slow.End()

	SetLedger(prev)
	recs := decodeLedger(t, &buf)
	validateLedgerSchema(t, recs)
	var warns []LedgerRecord
	for _, r := range recs {
		if r.Type == "slow_span" {
			warns = append(warns, r)
		}
	}
	if len(warns) != 1 {
		t.Fatalf("got %d slow_span records, want 1: %+v", len(warns), recs)
	}
	if warns[0].Op != "slow.op" || warns[0].MS < 1 || warns[0].ThresholdMS != 1 {
		t.Errorf("slow_span record = %+v", warns[0])
	}
}

// The disabled ledger path must be allocation-free, like the rest of the
// obs no-op contract.
func TestRecordOpDisabledZeroAllocations(t *testing.T) {
	if prev := SetLedger(nil); prev != nil {
		defer SetLedger(prev)
	}
	allocs := testing.AllocsPerRun(200, func() {
		RecordOp("nde.WhatIf", time.Millisecond, 100, 4, "hit", "")
		maybeRecordSlowSpan("pipeline.op", time.Millisecond)
	})
	if allocs != 0 {
		t.Errorf("disabled RecordOp allocated %v objects per run, want 0", allocs)
	}
}

func TestGitSHABestEffort(t *testing.T) {
	// In this repo's checkout GitSHA should resolve to a hex-ish string;
	// anywhere else it must return "" without error. Both are acceptable.
	sha := GitSHA()
	if sha != "" && len(sha) < 7 {
		t.Errorf("GitSHA() = %q, want empty or a commit id", sha)
	}
}
