package obs

import (
	"math"
	"math/rand"
	"regexp"
	"strings"
	"testing"
)

// Exposition-correctness goldens beyond the happy path: a histogram with
// no observations must still emit all bucket lines, the +Inf bucket, and
// zero _sum/_count; observations past the last bound land only in +Inf.
func TestWritePrometheusHistogramEdges(t *testing.T) {
	r := NewRegistry()
	r.Histogram("empty_hist", []float64{0.5, 1})
	over := r.Histogram("overflow_hist", []float64{0.25})
	over.Observe(1e9)
	over.Observe(math.MaxFloat64)

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	want := `# TYPE empty_hist histogram
empty_hist_bucket{le="0.5"} 0
empty_hist_bucket{le="1"} 0
empty_hist_bucket{le="+Inf"} 0
empty_hist_sum 0
empty_hist_count 0
# TYPE overflow_hist histogram
overflow_hist_bucket{le="0.25"} 0
overflow_hist_bucket{le="+Inf"} 2
overflow_hist_sum 1.7976931348623157e+308
overflow_hist_count 2
`
	if b.String() != want {
		t.Errorf("prometheus output mismatch:\ngot:\n%s\nwant:\n%s", b.String(), want)
	}
}

// Metric families are emitted counters, then gauges, then histograms,
// each sorted by name — deterministic output for golden diffing and for
// scrape-to-scrape stability.
func TestWritePrometheusDeterministicOrder(t *testing.T) {
	r := NewRegistry()
	r.Counter("z_total").Inc()
	r.Counter("a_total").Inc()
	r.Gauge("m_gauge").Set(1)
	r.Histogram("b_hist", []float64{1}).Observe(0.5)

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	order := []string{"a_total", "z_total", "m_gauge", "b_hist"}
	last := -1
	for _, name := range order {
		i := strings.Index(out, "# TYPE "+name)
		if i < 0 {
			t.Fatalf("family %s missing:\n%s", name, out)
		}
		if i < last {
			t.Errorf("family %s out of order:\n%s", name, out)
		}
		last = i
	}
	var b2 strings.Builder
	if err := r.WritePrometheus(&b2); err != nil {
		t.Fatal(err)
	}
	if b2.String() != out {
		t.Errorf("two scrapes of an unchanged registry differ")
	}
}

// Every exposition line must be either a # TYPE comment or a
// name{labels} value sample with a valid metric name.
func TestWritePrometheusLineGrammar(t *testing.T) {
	r := NewRegistry()
	r.Counter("runs/total").Inc() // sanitized on the way in
	r.Gauge("inf_gauge").Set(math.Inf(1))
	r.Histogram("h", nil).Observe(0.01)

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	typeLine := regexp.MustCompile(`^# TYPE [a-zA-Z_:][a-zA-Z0-9_:]* (counter|gauge|histogram)$`)
	sample := regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{le="[^"]+"\})? (\+Inf|-Inf|[-+0-9.e]+)$`)
	for _, line := range strings.Split(strings.TrimRight(b.String(), "\n"), "\n") {
		if typeLine.MatchString(line) || sample.MatchString(line) {
			continue
		}
		t.Errorf("exposition line %q matches neither TYPE nor sample grammar", line)
	}
}

// Property: for any input string, Sanitize yields a valid Prometheus
// metric name ([a-zA-Z_:][a-zA-Z0-9_:]*), and valid names pass through
// unchanged (idempotence).
func TestSanitizeProperty(t *testing.T) {
	valid := regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)
	rng := rand.New(rand.NewSource(20260808))
	alphabet := []rune("abzAZ_:019 -./{}\"\\\n\téπ測试☃\x00")
	for i := 0; i < 5000; i++ {
		n := rng.Intn(12)
		rs := make([]rune, n)
		for j := range rs {
			rs[j] = alphabet[rng.Intn(len(alphabet))]
		}
		in := string(rs)
		got := Sanitize(in)
		if !valid.MatchString(got) {
			t.Fatalf("Sanitize(%q) = %q, not a valid metric name", in, got)
		}
		if again := Sanitize(got); again != got {
			t.Fatalf("Sanitize not idempotent: %q -> %q -> %q", in, got, again)
		}
	}
	// Purely-invalid and empty inputs must still produce a usable name.
	for _, in := range []string{"", "-", "9", "99", "☃☃", "\x00"} {
		if got := Sanitize(in); !valid.MatchString(got) {
			t.Errorf("Sanitize(%q) = %q, not a valid metric name", in, got)
		}
	}
}
