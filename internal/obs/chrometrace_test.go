package obs

import (
	"bytes"
	"encoding/json"
	"sync"
	"testing"
	"time"
)

// decodeChromeTrace strictly decodes an export, failing on anything
// chrome://tracing / Perfetto would reject (unknown fields, bad JSON).
func decodeChromeTrace(t *testing.T, b []byte) chromeTrace {
	t.Helper()
	var out chromeTrace
	dec := json.NewDecoder(bytes.NewReader(b))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&out); err != nil {
		t.Fatalf("chrome trace does not decode: %v\n%s", err, b)
	}
	if out.TraceEvents == nil {
		t.Fatalf("traceEvents is null, want an array (possibly empty)")
	}
	for i, ev := range out.TraceEvents {
		if ev.Ph != "X" {
			t.Errorf("event %d ph = %q, want X", i, ev.Ph)
		}
		if ev.Ts < 0 || ev.Dur < 0 {
			t.Errorf("event %d has negative ts/dur: %+v", i, ev)
		}
		if ev.Pid == 0 || ev.Tid == 0 {
			t.Errorf("event %d missing pid/tid: %+v", i, ev)
		}
	}
	return out
}

func TestChromeTraceExport(t *testing.T) {
	tr := NewTracer()
	tr.CaptureAllocs(false)
	root := tr.StartSpan("root", Str("phase", "run"))
	child := tr.StartSpan("child")
	child.SetRows(10, 5)
	time.Sleep(2 * time.Millisecond)
	child.End()
	leafless := tr.StartSpan("leafless") // zero children
	leafless.End()
	root.End()

	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatalf("export: %v", err)
	}
	out := decodeChromeTrace(t, buf.Bytes())
	if len(out.TraceEvents) != 3 {
		t.Fatalf("got %d events, want 3:\n%s", len(out.TraceEvents), buf.String())
	}
	byName := map[string]chromeEvent{}
	for _, ev := range out.TraceEvents {
		byName[ev.Name] = ev
	}
	child2, ok := byName["child"]
	if !ok {
		t.Fatalf("child event missing")
	}
	if child2.Args["rows_in"] != "10" || child2.Args["rows_out"] != "5" {
		t.Errorf("child args = %v", child2.Args)
	}
	if child2.Dur < 1000 { // microseconds
		t.Errorf("child dur = %v us, want >= 1000", child2.Dur)
	}
	rootEv := byName["root"]
	if rootEv.Ts != 0 {
		t.Errorf("root ts = %v, want 0 (trace base)", rootEv.Ts)
	}
	if rootEv.Dur < child2.Dur {
		t.Errorf("root dur %v < child dur %v", rootEv.Dur, child2.Dur)
	}
	if rootEv.Tid != child2.Tid {
		t.Errorf("root and child on different tracks: %d vs %d", rootEv.Tid, child2.Tid)
	}
	if _, open := byName["leafless"].Args["open"]; open {
		t.Errorf("ended leafless span marked open")
	}
}

func TestChromeTraceAllocArgs(t *testing.T) {
	tr := NewTracer() // alloc capture on
	s := tr.StartSpan("alloc.work")
	sink := make([][]byte, 0, 256)
	for i := 0; i < 200; i++ {
		sink = append(sink, make([]byte, 64))
	}
	s.End()
	_ = sink

	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatalf("export: %v", err)
	}
	out := decodeChromeTrace(t, buf.Bytes())
	if len(out.TraceEvents) != 1 {
		t.Fatalf("got %d events, want 1", len(out.TraceEvents))
	}
	args := out.TraceEvents[0].Args
	if args["allocs"] == "" || args["alloc_bytes"] == "" {
		t.Errorf("alloc deltas missing from args: %v", args)
	}
}

// An empty tracer — e.g. obs.Enable was never on, or was toggled after
// the run's spans — must still export a valid, loadable file.
func TestChromeTraceEmptyTracer(t *testing.T) {
	tr := NewTracer()
	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatalf("export: %v", err)
	}
	out := decodeChromeTrace(t, buf.Bytes())
	if len(out.TraceEvents) != 0 {
		t.Fatalf("got %d events, want 0", len(out.TraceEvents))
	}
}

// Exporting mid-run: open spans get a best-effort duration and an
// "open" arg; concurrent span churn during the export must not race
// (run under -race in check.sh).
func TestChromeTraceMidRun(t *testing.T) {
	tr := NewTracer()
	tr.CaptureAllocs(false)
	open := tr.StartSpan("still.running")
	time.Sleep(time.Millisecond)

	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		// Cap the churn: every child stays in the tracer and each export
		// walks the whole tree, so unbounded growth makes later exports
		// quadratically slower under -race.
		for spans := 0; spans < 500; spans++ {
			select {
			case <-stop:
				return
			default:
			}
			c := open.StartChild("worker.item")
			c.SetInt("i", 1)
			c.End()
		}
	}()

	for i := 0; i < 20; i++ {
		var buf bytes.Buffer
		if err := tr.WriteChromeTrace(&buf); err != nil {
			t.Fatalf("mid-run export: %v", err)
		}
		out := decodeChromeTrace(t, buf.Bytes())
		if len(out.TraceEvents) == 0 {
			t.Fatalf("no events in mid-run export")
		}
		if out.TraceEvents[0].Args["open"] != "true" {
			t.Errorf("open root not marked open: %+v", out.TraceEvents[0])
		}
		if out.TraceEvents[0].Dur <= 0 {
			t.Errorf("open span exported with dur %v, want > 0", out.TraceEvents[0].Dur)
		}
	}
	close(stop)
	wg.Wait()
	open.End()
}

// Sibling root spans land on distinct tids (separate tracks).
func TestChromeTraceRootTracks(t *testing.T) {
	tr := NewTracer()
	tr.CaptureAllocs(false)
	a := tr.StartSpan("a")
	a.End()
	b := tr.StartSpan("b")
	b.End()
	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatalf("export: %v", err)
	}
	out := decodeChromeTrace(t, buf.Bytes())
	if len(out.TraceEvents) != 2 || out.TraceEvents[0].Tid == out.TraceEvents[1].Tid {
		t.Errorf("root spans share a track: %+v", out.TraceEvents)
	}
}

// Degenerate span shapes must export cleanly: zero-children spans (open
// and closed), and spans straddling mid-run Enable/Disable toggles of the
// package-level switch — no panics, valid JSON, sane events.
func TestChromeTraceDegenerateShapes(t *testing.T) {
	cases := []struct {
		name  string
		build func() *Tracer
		want  int // expected event count
	}{
		{"closed leaf root", func() *Tracer {
			tr := NewTracer()
			tr.CaptureAllocs(false)
			tr.StartSpan("leaf").End()
			return tr
		}, 1},
		{"open leaf root", func() *Tracer {
			tr := NewTracer()
			tr.CaptureAllocs(false)
			tr.StartSpan("still.open")
			return tr
		}, 1},
		{"child ended after parent", func() *Tracer {
			tr := NewTracer()
			tr.CaptureAllocs(false)
			p := tr.StartSpan("parent")
			c := p.StartChild("child")
			p.End()
			c.End()
			return tr
		}, 2},
		{"double End", func() *Tracer {
			tr := NewTracer()
			tr.CaptureAllocs(false)
			s := tr.StartSpan("twice")
			s.End()
			s.End()
			return tr
		}, 1},
		{"toggle around default tracer", func() *Tracer {
			Reset()
			Enable()
			s := StartSpan("enabled.phase")
			Disable()
			s.End() // span outlives the toggle; End must still record
			n := StartSpan("disabled.phase")
			n.End() // no-op singleton, must not appear or panic
			Enable()
			StartSpan("reenabled.phase").End()
			Disable()
			return DefaultTracer()
		}, 2},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			var buf bytes.Buffer
			if err := c.build().WriteChromeTrace(&buf); err != nil {
				t.Fatalf("export: %v", err)
			}
			out := decodeChromeTrace(t, buf.Bytes())
			if len(out.TraceEvents) != c.want {
				t.Errorf("%d events, want %d", len(out.TraceEvents), c.want)
			}
		})
	}
}
