package obs

import (
	"fmt"
	"sync/atomic"
	"time"
)

// Progress tracks a long-running loop: completed units, processing rate
// and estimated time to completion. It mirrors itself into two gauges
// (progress_<name>_done / progress_<name>_total) so a metrics dump taken
// mid-run shows how far each loop has come, and observes its total elapsed
// seconds into progress_<name>_seconds on Done.
type Progress struct {
	name  string
	total int64
	done  atomic.Int64
	start time.Time

	reg       *Registry // nil for the shared no-op progress
	doneGauge *Gauge
}

var noopProgress = &Progress{}

// NewProgress starts tracking a loop of total units on the default
// registry. While observability is disabled it returns a shared no-op
// progress and performs no allocation.
func NewProgress(name string, total int) *Progress {
	if !Enabled() {
		return noopProgress
	}
	name = Sanitize(name)
	p := &Progress{name: name, total: int64(total), start: time.Now(), reg: defaultRegistry}
	defaultRegistry.Gauge("progress_" + name + "_total").Set(float64(total))
	p.doneGauge = defaultRegistry.Gauge("progress_" + name + "_done")
	p.doneGauge.Set(0)
	return p
}

// Tick records n completed units. Safe for concurrent use.
func (p *Progress) Tick(n int) {
	if p.reg == nil {
		return
	}
	d := p.done.Add(int64(n))
	p.doneGauge.Set(float64(d))
}

// Done finalizes the loop, recording its elapsed seconds into the
// progress_<name>_seconds histogram.
func (p *Progress) Done() {
	if p.reg == nil {
		return
	}
	p.reg.Histogram("progress_"+p.name+"_seconds", nil).Observe(time.Since(p.start).Seconds())
}

// ProgressSnapshot is a point-in-time view of a Progress.
type ProgressSnapshot struct {
	Name    string
	Done    int64
	Total   int64
	Elapsed time.Duration
	Rate    float64       // units per second
	ETA     time.Duration // zero when the rate is unknown or the loop is done
}

// Snapshot returns the current state. The no-op progress returns a zero
// snapshot.
func (p *Progress) Snapshot() ProgressSnapshot {
	if p.reg == nil {
		return ProgressSnapshot{}
	}
	done := p.done.Load()
	elapsed := time.Since(p.start)
	s := ProgressSnapshot{Name: p.name, Done: done, Total: p.total, Elapsed: elapsed}
	if elapsed > 0 {
		s.Rate = float64(done) / elapsed.Seconds()
	}
	if s.Rate > 0 && done < p.total {
		s.ETA = time.Duration(float64(p.total-done) / s.Rate * float64(time.Second))
	}
	return s
}

// String renders the snapshot as "name 30/100 (12.3/s, ETA 5.7s)".
func (s ProgressSnapshot) String() string {
	if s.Total <= 0 {
		return fmt.Sprintf("%s %d (%.1f/s)", s.Name, s.Done, s.Rate)
	}
	return fmt.Sprintf("%s %d/%d (%.1f/s, ETA %s)", s.Name, s.Done, s.Total, s.Rate, s.ETA.Round(time.Millisecond))
}
