package obs

import (
	"testing"
	"time"
)

// BenchmarkNoopInstrumentation measures the disabled-mode cost of the full
// instrumentation pattern used on the hot paths. It must report 0 B/op and
// 0 allocs/op.
func BenchmarkNoopInstrumentation(b *testing.B) {
	Disable()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sp := StartSpan("pipeline.op")
		sp.SetStr("kind", "Filter").SetRows(100, 40)
		Inc("pipeline_memo_misses_total")
		SetGauge("workers", 8)
		Observe("latency_seconds", 0.1)
		sp.End()
	}
}

// BenchmarkNoopLedgerRecord measures the cost of a facade-level ledger
// record when no ledger is installed: a single atomic pointer load. It
// must report 0 B/op and 0 allocs/op — the run-ledger extension of the
// no-op contract.
func BenchmarkNoopLedgerRecord(b *testing.B) {
	if prev := SetLedger(nil); prev != nil {
		defer SetLedger(prev)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		RecordOp("nde.WhatIf", time.Millisecond, 100, 4, "hit", "")
	}
}

// BenchmarkEnabledCounter measures the enabled-mode cost of a counter
// increment through the package helper (one atomic bool load, one map
// lookup under RLock, one atomic add).
func BenchmarkEnabledCounter(b *testing.B) {
	Enable()
	defer Disable()
	defer Reset()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Inc("bench_counter_total")
	}
}

// BenchmarkEnabledHistogramObserve measures the enabled-mode cost of one
// histogram observation with a pre-resolved handle.
func BenchmarkEnabledHistogramObserve(b *testing.B) {
	Enable()
	defer Disable()
	defer Reset()
	h := Default().Histogram("bench_hist", nil)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(float64(i % 10))
	}
}
