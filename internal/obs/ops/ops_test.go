package ops

import (
	"bufio"
	"encoding/json"
	"flag"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"sync"
	"testing"
	"time"

	"nde/internal/obs"
)

func get(t *testing.T, h http.Handler, path string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(http.MethodGet, path, nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	return rec
}

func TestHealthAndReady(t *testing.T) {
	ready := false
	h := Handler(Config{Ready: func() bool { return ready }})
	if rec := get(t, h, "/healthz"); rec.Code != http.StatusOK || !strings.Contains(rec.Body.String(), "ok") {
		t.Errorf("/healthz = %d %q", rec.Code, rec.Body.String())
	}
	if rec := get(t, h, "/readyz"); rec.Code != http.StatusServiceUnavailable {
		t.Errorf("/readyz before ready = %d, want 503", rec.Code)
	}
	ready = true
	if rec := get(t, h, "/readyz"); rec.Code != http.StatusOK {
		t.Errorf("/readyz after ready = %d, want 200", rec.Code)
	}
	// nil Ready = always ready
	if rec := get(t, Handler(Config{}), "/readyz"); rec.Code != http.StatusOK {
		t.Errorf("/readyz with nil Ready = %d, want 200", rec.Code)
	}
}

func TestMetricsEndpoint(t *testing.T) {
	r := obs.NewRegistry()
	r.Counter("ops_test_requests_total").Add(7)
	h := Handler(Config{Registry: r})
	rec := get(t, h, "/metrics")
	if rec.Code != http.StatusOK {
		t.Fatalf("/metrics = %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") || !strings.Contains(ct, "0.0.4") {
		t.Errorf("content type = %q", ct)
	}
	if !strings.Contains(rec.Body.String(), "ops_test_requests_total 7") {
		t.Errorf("exposition missing counter:\n%s", rec.Body.String())
	}
}

func TestTraceEndpoint(t *testing.T) {
	tr := obs.NewTracer()
	tr.CaptureAllocs(false)
	sp := tr.StartSpan("unit.work")
	sp.End()
	h := Handler(Config{Tracer: tr})
	rec := get(t, h, "/trace")
	if rec.Code != http.StatusOK {
		t.Fatalf("/trace = %d", rec.Code)
	}
	if cd := rec.Header().Get("Content-Disposition"); !strings.Contains(cd, "nde-trace.json") {
		t.Errorf("content disposition = %q", cd)
	}
	var out struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil {
		t.Fatalf("trace not JSON: %v\n%s", err, rec.Body.String())
	}
	if len(out.TraceEvents) != 1 {
		t.Errorf("got %d events, want 1", len(out.TraceEvents))
	}
}

// Every ops route is a read; non-GET/HEAD methods are rejected with 405
// and an Allow header, while GET and HEAD keep working.
func TestMethodGuard(t *testing.T) {
	h := Handler(Config{})
	paths := []string{"/metrics", "/healthz", "/readyz", "/trace"}
	for _, path := range paths {
		for _, method := range []string{http.MethodPost, http.MethodPut, http.MethodDelete, http.MethodPatch} {
			req := httptest.NewRequest(method, path, strings.NewReader("x"))
			rec := httptest.NewRecorder()
			h.ServeHTTP(rec, req)
			if rec.Code != http.StatusMethodNotAllowed {
				t.Errorf("%s %s = %d, want 405", method, path, rec.Code)
			}
			if allow := rec.Header().Get("Allow"); allow != "GET, HEAD" {
				t.Errorf("%s %s Allow = %q, want \"GET, HEAD\"", method, path, allow)
			}
		}
		for _, method := range []string{http.MethodGet, http.MethodHead} {
			req := httptest.NewRequest(method, path, nil)
			rec := httptest.NewRecorder()
			h.ServeHTTP(rec, req)
			if rec.Code == http.StatusMethodNotAllowed {
				t.Errorf("%s %s = 405, want it allowed", method, path)
			}
		}
	}
}

// REGRESSION: Close used to read and nil s.srv unsynchronized, a data race
// when a signal handler and a defer both tore the server down. Now it is
// idempotent and race-free, and Addr stays valid afterwards.
func TestConcurrentClose(t *testing.T) {
	srv, err := Serve("127.0.0.1:0", Config{})
	if err != nil {
		t.Fatal(err)
	}
	addr := srv.Addr()
	if addr == "" {
		t.Fatal("empty address from live server")
	}
	var wg sync.WaitGroup
	errs := make([]error, 8)
	for i := range errs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = srv.Close()
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Errorf("concurrent close %d: %v", i, err)
		}
	}
	if got := srv.Addr(); got != addr {
		t.Errorf("Addr after Close = %q, want %q", got, addr)
	}
	if err := srv.Close(); err != nil {
		t.Errorf("close after concurrent closes: %v", err)
	}
	// nil receiver is a no-op on both methods
	var nilSrv *Server
	if nilSrv.Addr() != "" || nilSrv.Close() != nil {
		t.Error("nil server methods are not no-ops")
	}
}

func TestPprofGated(t *testing.T) {
	if rec := get(t, Handler(Config{}), "/debug/pprof/"); rec.Code != http.StatusNotFound {
		t.Errorf("pprof without opt-in = %d, want 404", rec.Code)
	}
	if rec := get(t, Handler(Config{Pprof: true}), "/debug/pprof/"); rec.Code != http.StatusOK {
		t.Errorf("pprof with opt-in = %d, want 200", rec.Code)
	}
}

// The acceptance-criteria scenario: a live server scraped over real TCP
// while the observed run is still opening and closing spans and bumping
// counters (runs under -race in check.sh).
func TestServeScrapeMidRun(t *testing.T) {
	reg := obs.NewRegistry()
	tr := obs.NewTracer()
	tr.CaptureAllocs(false)
	srv, err := Serve("127.0.0.1:0", Config{Registry: reg, Tracer: tr})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	root := tr.StartSpan("run")
	go func() {
		defer wg.Done()
		// Bound the span churn: every child stays in the tracer, and each
		// /trace export walks the whole tree under the tracer lock, so an
		// unbounded loop makes successive exports quadratically slower
		// (a 600s timeout under -race before this cap).
		spans := 0
		for {
			select {
			case <-stop:
				return
			default:
			}
			reg.Counter("run_ops_total").Inc()
			if spans < 500 {
				c := root.StartChild("op")
				c.End()
				spans++
			}
		}
	}()

	base := "http://" + srv.Addr()
	for i := 0; i < 10; i++ {
		body := httpGet(t, base+"/metrics")
		if !strings.Contains(body, "run_ops_total") {
			t.Fatalf("mid-run scrape missing counter:\n%s", body)
		}
		trace := httpGet(t, base+"/trace")
		var out struct {
			TraceEvents []map[string]any `json:"traceEvents"`
		}
		if err := json.Unmarshal([]byte(trace), &out); err != nil {
			t.Fatalf("mid-run trace not JSON: %v", err)
		}
		if len(out.TraceEvents) == 0 {
			t.Fatalf("mid-run trace has no events")
		}
	}
	close(stop)
	wg.Wait()
	root.End()

	if err := srv.Close(); err != nil {
		t.Errorf("close: %v", err)
	}
	if err := srv.Close(); err != nil {
		t.Errorf("double close: %v", err)
	}
}

func httpGet(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s = %d", url, resp.StatusCode)
	}
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("reading %s: %v", url, err)
	}
	return string(b)
}

// Flags.Start wires the whole session: obs enabled, ledger header
// written, ops server up; Close dumps the files and tears down.
func TestFlagsSessionLifecycle(t *testing.T) {
	defer obs.Disable()
	defer obs.Reset()
	obs.Reset()
	dir := t.TempDir()

	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	f := BindFlags(fs)
	err := fs.Parse([]string{
		"-ops", "127.0.0.1:0",
		"-ledger", dir + "/run.jsonl",
		"-metrics", dir + "/out.prom",
		"-trace", dir + "/trace.json",
		"-slowspan", "1ms",
	})
	if err != nil {
		t.Fatal(err)
	}
	if !f.Active() {
		t.Fatalf("flags not active after parse")
	}
	var stderr strings.Builder
	sess, err := f.Start("ops-test", &stderr)
	if err != nil {
		t.Fatal(err)
	}
	defer obs.SetSlowSpanThreshold(0)
	if !obs.Enabled() {
		t.Errorf("obs not enabled by Start")
	}
	if !strings.Contains(stderr.String(), "serving telemetry on") {
		t.Errorf("no address notice on stderr: %q", stderr.String())
	}
	addr := sess.server.Addr()

	// simulate a run
	obs.Inc("session_test_total")
	sp := obs.StartSpan("session.work")
	time.Sleep(2 * time.Millisecond) // exceeds -slowspan 1ms
	sp.End()
	obs.RecordOp("SessionOp", time.Millisecond, 3, 0, "", "")
	if body := httpGet(t, "http://"+addr+"/metrics"); !strings.Contains(body, "session_test_total") {
		t.Errorf("live scrape missing counter")
	}

	if err := sess.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	if obs.ActiveLedger() != nil {
		t.Errorf("ledger still installed after Close")
	}
	if _, err := http.Get("http://" + addr + "/healthz"); err == nil {
		t.Errorf("ops server still serving after Close")
	}

	prom, err := os.ReadFile(dir + "/out.prom")
	if err != nil || !strings.Contains(string(prom), "session_test_total") {
		t.Errorf("metrics dump missing: %v\n%s", err, prom)
	}
	traceB, err := os.ReadFile(dir + "/trace.json")
	if err != nil || !strings.Contains(string(traceB), `"traceEvents"`) {
		t.Errorf("chrome trace dump missing: %v", err)
	}

	lf, err := os.Open(dir + "/run.jsonl")
	if err != nil {
		t.Fatal(err)
	}
	defer lf.Close()
	var types []string
	sc := bufio.NewScanner(lf)
	for sc.Scan() {
		var rec map[string]any
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			t.Fatalf("bad ledger line %q: %v", sc.Text(), err)
		}
		typ, _ := rec["t"].(string)
		types = append(types, typ)
	}
	joined := strings.Join(types, ",")
	if !strings.HasPrefix(joined, "header") {
		t.Errorf("ledger types = %v, want header first", types)
	}
	if !strings.Contains(joined, "op") || !strings.Contains(joined, "slow_span") {
		t.Errorf("ledger types = %v, want op and slow_span records", types)
	}
	if cmd := firstHeaderField(t, dir+"/run.jsonl", "cmd"); cmd != "ops-test" {
		t.Errorf("header cmd = %q", cmd)
	}
}

func firstHeaderField(t *testing.T, path, field string) string {
	t.Helper()
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	line, _, _ := strings.Cut(string(b), "\n")
	var rec map[string]any
	if err := json.Unmarshal([]byte(line), &rec); err != nil {
		t.Fatal(err)
	}
	v, _ := rec[field].(string)
	return v
}

// A session with no flags set is inert: no obs, free Close.
func TestFlagsInactiveSession(t *testing.T) {
	obs.Disable()
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	f := BindFlags(fs)
	if err := fs.Parse(nil); err != nil {
		t.Fatal(err)
	}
	sess, err := f.Start("noop", nil)
	if err != nil {
		t.Fatal(err)
	}
	if obs.Enabled() {
		t.Errorf("obs enabled without any telemetry flag")
	}
	if err := sess.Close(); err != nil {
		t.Errorf("close: %v", err)
	}
}
