// Package ops is the live operational telemetry plane: a stdlib net/http
// handler set over internal/obs that a long-running process (or a cmd
// run with -ops) mounts so metrics and traces are scrapeable while a run
// is in flight, not only in a post-exit dump. It is the surface the
// future nde-serve daemon embeds.
//
// Endpoints:
//
//	/metrics       Prometheus text exposition of the live registry
//	/healthz       liveness: 200 "ok" as soon as the server is up
//	/readyz        readiness: 200 when the Ready func says so, else 503
//	/trace         Chrome trace-event JSON download of the span forest
//	/debug/pprof/  Go profiling handlers (only when Config.Pprof is set)
package ops

import (
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"sync"
	"time"

	"nde/internal/obs"
)

// Config selects what the handler set exposes. The zero value serves the
// process-wide obs defaults with pprof off and readiness always true.
type Config struct {
	// Registry to scrape at /metrics; nil = obs.Default().
	Registry *obs.Registry
	// Tracer to export at /trace; nil = obs.DefaultTracer().
	Tracer *obs.Tracer
	// Pprof gates the /debug/pprof/* handlers. Off by default: profiling
	// endpoints expose call stacks and should be an explicit opt-in.
	Pprof bool
	// Ready reports readiness for /readyz; nil = always ready. A server
	// warming caches can flip this to shed load-balancer traffic.
	Ready func() bool
}

func (c Config) registry() *obs.Registry {
	if c.Registry != nil {
		return c.Registry
	}
	return obs.Default()
}

func (c Config) tracer() *obs.Tracer {
	if c.Tracer != nil {
		return c.Tracer
	}
	return obs.DefaultTracer()
}

// readOnly gates a telemetry handler to GET and HEAD. The ops routes are
// all reads; anything else is rejected with 405 and an Allow header so the
// handler set composes predictably into larger muxes (a POST routed to
// /metrics must not silently scrape).
func readOnly(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet && r.Method != http.MethodHead {
			w.Header().Set("Allow", "GET, HEAD")
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		h(w, r)
	}
}

// Handler returns the ops-plane handler set on a fresh mux. It is safe to
// serve while the observed run is mutating the registry and tracer. All
// routes accept only GET and HEAD (405 otherwise), except the pprof
// handlers, which manage their own methods (pprof symbol lookups POST).
func Handler(cfg Config) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", readOnly(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		// Errors past the first byte are undetectable; WritePrometheus
		// only fails on writer errors, which means the client went away.
		_ = cfg.registry().WritePrometheus(w)
	}))
	mux.HandleFunc("/healthz", readOnly(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	}))
	mux.HandleFunc("/readyz", readOnly(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		if cfg.Ready != nil && !cfg.Ready() {
			http.Error(w, "not ready", http.StatusServiceUnavailable)
			return
		}
		fmt.Fprintln(w, "ready")
	}))
	mux.HandleFunc("/trace", readOnly(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		w.Header().Set("Content-Disposition", `attachment; filename="nde-trace.json"`)
		_ = cfg.tracer().WriteChromeTrace(w)
	}))
	if cfg.Pprof {
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	return mux
}

// Server is a running ops plane bound to a TCP address.
type Server struct {
	ln   net.Listener
	srv  *http.Server
	addr string // captured at bind time so Addr stays valid after Close

	closeOnce sync.Once
	closeErr  error
}

// Serve binds addr (":0" picks a free port) and serves the ops handler
// set in a background goroutine. The returned server reports its concrete
// address via Addr and is torn down with Close.
func Serve(addr string, cfg Config) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("ops: listening on %s: %w", addr, err)
	}
	srv := &http.Server{
		Handler:           Handler(cfg),
		ReadHeaderTimeout: 5 * time.Second,
	}
	go func() {
		// ErrServerClosed after Close is the clean-shutdown path; any
		// other serve error means the ops plane died, which must not take
		// down the run it observes.
		_ = srv.Serve(ln)
	}()
	return &Server{ln: ln, srv: srv, addr: ln.Addr().String()}, nil
}

// Addr returns the bound address, e.g. "127.0.0.1:43657". It remains
// valid after Close, so teardown logging can still name the server.
func (s *Server) Addr() string {
	if s == nil {
		return ""
	}
	return s.addr
}

// Close stops accepting connections and closes active ones. Safe to call
// on a nil server and safe for concurrent and repeated calls: the
// underlying close runs once and every caller observes its error. (The
// old implementation read and niled s.srv with no synchronization, a data
// race under concurrent Close — exactly what a daemon's signal handler
// racing its defer does.)
func (s *Server) Close() error {
	if s == nil {
		return nil
	}
	s.closeOnce.Do(func() {
		if s.srv != nil {
			s.closeErr = s.srv.Close()
		}
	})
	return s.closeErr
}
