package ops

import (
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"nde/internal/obs"
)

// Flags is the shared telemetry flag set every cmd binary exposes, so the
// whole suite speaks one ops dialect: -metrics/-trace (dump-on-exit, as
// before), -ledger (the run ledger), -slowspan (slow-span warnings), and
// -ops/-ops-pprof/-ops-wait (the live HTTP plane).
type Flags struct {
	Ops      string
	Pprof    bool
	Wait     bool
	Metrics  string
	Trace    string
	Ledger   string
	SlowSpan time.Duration
}

// BindFlags registers the shared telemetry flags on fs and returns the
// destination struct, valid after fs.Parse.
func BindFlags(fs *flag.FlagSet) *Flags {
	f := &Flags{}
	fs.StringVar(&f.Metrics, "metrics", "", "dump metrics to this file on exit (Prometheus text; JSON when the path ends in .json)")
	fs.StringVar(&f.Trace, "trace", "", "dump the span trace to this file on exit (indented tree; Chrome trace JSON when the path ends in .json)")
	fs.StringVar(&f.Ledger, "ledger", "", "append a structured run ledger (JSONL, one record per facade call) to this file")
	fs.DurationVar(&f.SlowSpan, "slowspan", 0, "emit a ledger warning for spans slower than this (e.g. 500ms; 0 = off)")
	fs.StringVar(&f.Ops, "ops", "", "serve live telemetry (/metrics /healthz /readyz /trace) on this address (e.g. :9090 or 127.0.0.1:0)")
	fs.BoolVar(&f.Pprof, "ops-pprof", false, "also expose /debug/pprof/* on the -ops server")
	fs.BoolVar(&f.Wait, "ops-wait", false, "after the run completes, keep the -ops server (and process) up until interrupted")
	return f
}

// Active reports whether any telemetry flag was set — the condition for
// enabling observability.
func (f *Flags) Active() bool {
	return f.Ops != "" || f.Metrics != "" || f.Trace != "" || f.Ledger != "" || f.SlowSpan > 0
}

// Session is the running telemetry for one cmd invocation: the optional
// ops server, the optional run ledger, and a signal handler that flushes
// both — plus the -metrics/-trace dump files — when the process is
// interrupted mid-run, so partial runs still produce telemetry.
type Session struct {
	flags   *Flags
	server  *Server
	ledger  *obs.Ledger
	stderr  io.Writer
	waiting atomic.Bool
	waitCh  chan struct{}
	sigCh   chan os.Signal
	once    sync.Once
	downErr error
}

// Start enables observability when any flag is active, opens the ledger,
// starts the ops server, and installs the interrupt flusher. It returns a
// session whose Close performs the orderly teardown (dump files, close
// ledger, stop server); on a no-flag run Start is a no-op and Close is
// free. cmd names the binary in the ledger header; stderr receives the
// one-line "serving telemetry on ADDR" notice (nil = os.Stderr).
func (f *Flags) Start(cmd string, stderr io.Writer) (*Session, error) {
	return f.start(cmd, stderr, true)
}

// StartDaemon is Start for long-running servers that own their signal
// handling: the session is identical — ledger, dumps, optional -ops
// server — but no interrupt flusher is installed, leaving SIGINT/SIGTERM
// entirely to the daemon's graceful-drain path. (With Start, the
// session's mid-run interrupt handler would race the daemon's drain and
// kill the process with exit 130 the moment the flush finished.)
func (f *Flags) StartDaemon(cmd string, stderr io.Writer) (*Session, error) {
	return f.start(cmd, stderr, false)
}

func (f *Flags) start(cmd string, stderr io.Writer, handleSignals bool) (*Session, error) {
	s := &Session{flags: f, stderr: stderr, waitCh: make(chan struct{}, 1)}
	if s.stderr == nil {
		s.stderr = os.Stderr
	}
	if !f.Active() {
		return s, nil
	}
	obs.Enable()
	if f.SlowSpan > 0 {
		obs.SetSlowSpanThreshold(f.SlowSpan)
	}
	if f.Ledger != "" {
		l, err := obs.OpenLedger(f.Ledger, obs.LedgerMeta{Cmd: cmd})
		if err != nil {
			return nil, err
		}
		s.ledger = l
		obs.SetLedger(l)
	}
	if f.Ops != "" {
		srv, err := Serve(f.Ops, Config{Pprof: f.Pprof})
		if err != nil {
			s.teardown()
			return nil, err
		}
		s.server = srv
		fmt.Fprintf(s.stderr, "ops: serving telemetry on %s\n", srv.Addr())
	}
	if handleSignals {
		s.sigCh = make(chan os.Signal, 2)
		signal.Notify(s.sigCh, os.Interrupt, syscall.SIGTERM)
		go s.watchSignals()
	}
	return s, nil
}

// watchSignals flushes telemetry on interrupt. Mid-run, an interrupt is
// fatal: flush everything and exit 130 (the shell convention for SIGINT).
// In -ops-wait mode after the run finished, the first interrupt instead
// hands control back to Close for a clean zero-exit teardown.
func (s *Session) watchSignals() {
	for range s.sigCh {
		if s.waiting.Load() {
			select {
			case s.waitCh <- struct{}{}:
			default:
			}
			continue
		}
		s.teardown()
		os.Exit(130)
	}
}

// Close ends the session: in -ops-wait mode it first blocks until the
// process is interrupted, then (in all modes) dumps the -metrics/-trace
// files, closes the ledger, and stops the ops server. It returns the
// first teardown error.
func (s *Session) Close() error {
	// -ops-wait depends on the session's own interrupt handler to release
	// the wait; without one (StartDaemon) it would block forever.
	if s.flags.Wait && s.server != nil && s.sigCh != nil {
		fmt.Fprintf(s.stderr, "ops: run complete; telemetry stays on %s until interrupt\n", s.server.Addr())
		s.waiting.Store(true)
		<-s.waitCh
	}
	return s.teardown()
}

// teardown is the single shutdown path shared by Close and the signal
// handler; sync.Once makes the race between them benign.
func (s *Session) teardown() error {
	s.once.Do(func() {
		if s.sigCh != nil {
			signal.Stop(s.sigCh) // no sends after Stop returns, so close is safe
			close(s.sigCh)
		}
		err := obs.DumpFiles(s.flags.Metrics, s.flags.Trace)
		if s.ledger != nil {
			obs.SetLedger(nil)
			if cerr := s.ledger.Close(); cerr != nil && err == nil {
				err = cerr
			}
		}
		if s.server != nil {
			if cerr := s.server.Close(); cerr != nil && err == nil {
				err = cerr
			}
		}
		s.downErr = err
	})
	return s.downErr
}
