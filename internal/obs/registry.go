package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing metric.
type Counter struct {
	v atomic.Int64
}

// Add increases the counter by delta (negative deltas are ignored).
func (c *Counter) Add(delta int64) {
	if delta > 0 {
		c.v.Add(delta)
	}
}

// Inc increases the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a metric that can go up and down.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add adds delta to the current value.
func (g *Gauge) Add(delta float64) { addFloat(&g.bits, delta) }

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// DefBuckets is the default histogram bucketing (seconds-oriented, like
// Prometheus' client default).
var DefBuckets = []float64{.005, .01, .025, .05, .1, .25, .5, 1, 2.5, 5, 10}

// LinearBuckets returns count buckets starting at start, each width apart.
func LinearBuckets(start, width float64, count int) []float64 {
	b := make([]float64, count)
	for i := range b {
		b[i] = start + float64(i)*width
	}
	return b
}

// ExpBuckets returns count buckets starting at start, each factor× the
// previous.
func ExpBuckets(start, factor float64, count int) []float64 {
	b := make([]float64, count)
	v := start
	for i := range b {
		b[i] = v
		v *= factor
	}
	return b
}

// Histogram is a fixed-bucket histogram. Observations are lock-free
// atomic increments.
type Histogram struct {
	bounds  []float64 // ascending upper bounds; +Inf bucket is implicit
	buckets []atomic.Int64
	count   atomic.Int64
	sumBits atomic.Uint64
}

func newHistogram(bounds []float64) *Histogram {
	if len(bounds) == 0 {
		bounds = DefBuckets
	}
	cp := append([]float64(nil), bounds...)
	sort.Float64s(cp)
	return &Histogram{bounds: cp, buckets: make([]atomic.Int64, len(cp)+1)}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v
	h.buckets[i].Add(1)
	h.count.Add(1)
	addFloat(&h.sumBits, v)
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

// Bounds returns the bucket upper bounds (without the implicit +Inf).
func (h *Histogram) Bounds() []float64 { return append([]float64(nil), h.bounds...) }

// Cumulative returns the cumulative count per bucket, one entry per bound
// plus a final entry for +Inf.
func (h *Histogram) Cumulative() []int64 {
	out := make([]int64, len(h.buckets))
	cum := int64(0)
	for i := range h.buckets {
		cum += h.buckets[i].Load()
		out[i] = cum
	}
	return out
}

func addFloat(bits *atomic.Uint64, delta float64) {
	for {
		old := bits.Load()
		nw := math.Float64bits(math.Float64frombits(old) + delta)
		if bits.CompareAndSwap(old, nw) {
			return
		}
	}
}

// Registry is a thread-safe collection of named metrics. Metric handles
// are get-or-create: concurrent callers asking for the same name share one
// metric.
type Registry struct {
	mu       sync.RWMutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
	}
}

// Reset drops every metric.
func (r *Registry) Reset() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.counters = make(map[string]*Counter)
	r.gauges = make(map[string]*Gauge)
	r.hists = make(map[string]*Histogram)
}

// Counter returns the named counter, creating it if needed.
func (r *Registry) Counter(name string) *Counter {
	name = Sanitize(name)
	r.mu.RLock()
	c, ok := r.counters[name]
	r.mu.RUnlock()
	if ok {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c, ok = r.counters[name]; !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it if needed.
func (r *Registry) Gauge(name string) *Gauge {
	name = Sanitize(name)
	r.mu.RLock()
	g, ok := r.gauges[name]
	r.mu.RUnlock()
	if ok {
		return g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g, ok = r.gauges[name]; !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it with the given bucket
// upper bounds (DefBuckets when nil) if needed. Bounds of an existing
// histogram are not changed.
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	name = Sanitize(name)
	r.mu.RLock()
	h, ok := r.hists[name]
	r.mu.RUnlock()
	if ok {
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h, ok = r.hists[name]; !ok {
		h = newHistogram(bounds)
		r.hists[name] = h
	}
	return h
}

// Sanitize maps an arbitrary string to a valid Prometheus metric name:
// [a-zA-Z_:][a-zA-Z0-9_:]*. Invalid runes become '_'.
func Sanitize(name string) string {
	ok := true
	for i, r := range name {
		if !validNameRune(r, i == 0) {
			ok = false
			break
		}
	}
	if ok && name != "" {
		return name
	}
	var b strings.Builder
	for i, r := range name {
		if validNameRune(r, i == 0) {
			b.WriteRune(r)
		} else {
			b.WriteByte('_')
		}
	}
	if b.Len() == 0 {
		return "_"
	}
	return b.String()
}

func validNameRune(r rune, first bool) bool {
	if r >= 'a' && r <= 'z' || r >= 'A' && r <= 'Z' || r == '_' || r == ':' {
		return true
	}
	return !first && r >= '0' && r <= '9'
}

func formatFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WritePrometheus writes every metric in Prometheus text exposition format
// (version 0.0.4), with metric families sorted by name for deterministic
// output.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.RLock()
	defer r.mu.RUnlock()
	for _, name := range sortedKeys(r.counters) {
		if _, err := fmt.Fprintf(w, "# TYPE %s counter\n%s %d\n", name, name, r.counters[name].Value()); err != nil {
			return err
		}
	}
	for _, name := range sortedKeys(r.gauges) {
		if _, err := fmt.Fprintf(w, "# TYPE %s gauge\n%s %s\n", name, name, formatFloat(r.gauges[name].Value())); err != nil {
			return err
		}
	}
	for _, name := range sortedKeys(r.hists) {
		h := r.hists[name]
		if _, err := fmt.Fprintf(w, "# TYPE %s histogram\n", name); err != nil {
			return err
		}
		cum := h.Cumulative()
		for i, bound := range h.bounds {
			if _, err := fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", name, formatFloat(bound), cum[i]); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", name, cum[len(cum)-1]); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s_sum %s\n%s_count %d\n", name, formatFloat(h.Sum()), name, h.Count()); err != nil {
			return err
		}
	}
	return nil
}

// histJSON is the JSON shape of one histogram.
type histJSON struct {
	Count   int64   `json:"count"`
	Sum     float64 `json:"sum"`
	Bounds  []float64
	Buckets []int64
}

// MarshalJSON emits bounds/cumulative-bucket pairs.
func (h histJSON) MarshalJSON() ([]byte, error) {
	type pair struct {
		LE    float64 `json:"le"`
		Count int64   `json:"count"`
	}
	pairs := make([]pair, 0, len(h.Bounds)+1)
	for i, b := range h.Bounds {
		pairs = append(pairs, pair{LE: b, Count: h.Buckets[i]})
	}
	pairs = append(pairs, pair{LE: math.Inf(1), Count: h.Buckets[len(h.Buckets)-1]})
	// math.Inf is not JSON-encodable; emit the final bucket via MaxFloat64
	pairs[len(pairs)-1].LE = math.MaxFloat64
	return json.Marshal(struct {
		Count   int64   `json:"count"`
		Sum     float64 `json:"sum"`
		Buckets []pair  `json:"buckets"`
	}{h.Count, h.Sum, pairs})
}

// WriteJSON writes every metric as a single JSON object with "counters",
// "gauges" and "histograms" sections.
func (r *Registry) WriteJSON(w io.Writer) error {
	r.mu.RLock()
	counters := make(map[string]int64, len(r.counters))
	for name, c := range r.counters {
		counters[name] = c.Value()
	}
	gauges := make(map[string]float64, len(r.gauges))
	for name, g := range r.gauges {
		gauges[name] = g.Value()
	}
	hists := make(map[string]histJSON, len(r.hists))
	for name, h := range r.hists {
		hists[name] = histJSON{Count: h.Count(), Sum: h.Sum(), Bounds: h.bounds, Buckets: h.Cumulative()}
	}
	r.mu.RUnlock()
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(struct {
		Counters   map[string]int64    `json:"counters"`
		Gauges     map[string]float64  `json:"gauges"`
		Histograms map[string]histJSON `json:"histograms"`
	}{counters, gauges, hists})
}

func sortedKeys[M ~map[string]V, V any](m M) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
