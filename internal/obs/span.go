package obs

import (
	"fmt"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"time"
)

// Attr is one key/value annotation on a span.
type Attr struct {
	Key string
	Val string
}

// Str builds a string attribute.
func Str(key, val string) Attr { return Attr{Key: key, Val: val} }

// Int builds an integer attribute.
func Int(key string, val int64) Attr { return Attr{Key: key, Val: strconv.FormatInt(val, 10)} }

// Span records one timed region of work: wall time, allocation deltas
// (from runtime.MemStats) and arbitrary attributes such as row counts.
// Spans started while another span is open on the same tracer become its
// children, mirroring the call structure of a single orchestration
// goroutine. Concurrent worker goroutines must not use StartSpan (the
// implicit current-span nesting would interleave their trees); they attach
// children to an explicit parent with Span.StartChild, which is safe for
// concurrent use, or report through metrics and Progress.
type Span struct {
	tracer *Tracer // nil for the shared no-op span
	name   string
	attrs  []Attr
	parent *Span

	start       time.Time
	wall        time.Duration
	startAllocs uint64 // MemStats.Mallocs at start
	startBytes  uint64 // MemStats.TotalAlloc at start
	allocs      uint64
	bytes       uint64
	ended       bool
	noAllocs    bool // StartChild spans: alloc deltas are not captured

	children []*Span
}

var noopSpan = &Span{}

// StartSpan begins a span on the default tracer. While observability is
// disabled it returns a shared no-op span and performs no allocation.
func StartSpan(name string, attrs ...Attr) *Span {
	if !Enabled() {
		return noopSpan
	}
	return defaultTracer.StartSpan(name, attrs...)
}

// StartChild begins a span as an explicit child of s, without consulting
// or updating the tracer's implicit current-span stack. Unlike StartSpan it
// is safe to call from concurrent worker goroutines (each worker annotates
// and ends only its own child), so parallel loops can attach per-item spans
// under the loop's span. Children appear in creation order, which under
// concurrency is scheduling order, not item order. Allocation-delta capture
// is skipped for such spans: overlapping concurrent work would make the
// process-wide MemStats deltas meaningless. No-op (and allocation-free) on
// the no-op span.
func (s *Span) StartChild(name string, attrs ...Attr) *Span {
	if s.tracer == nil {
		return noopSpan
	}
	c := &Span{tracer: s.tracer, name: name, attrs: attrs, parent: s, noAllocs: true}
	s.tracer.mu.Lock()
	s.children = append(s.children, c)
	c.start = time.Now()
	s.tracer.mu.Unlock()
	return c
}

// SetStr attaches a string attribute; chainable. No-op on the no-op span.
func (s *Span) SetStr(key, val string) *Span {
	if s.tracer == nil {
		return s
	}
	s.tracer.mu.Lock()
	s.attrs = append(s.attrs, Attr{Key: key, Val: val})
	s.tracer.mu.Unlock()
	return s
}

// SetInt attaches an integer attribute; chainable. No-op on the no-op
// span.
func (s *Span) SetInt(key string, val int64) *Span {
	if s.tracer == nil {
		return s
	}
	v := strconv.FormatInt(val, 10)
	s.tracer.mu.Lock()
	s.attrs = append(s.attrs, Attr{Key: key, Val: v})
	s.tracer.mu.Unlock()
	return s
}

// SetRows attaches the conventional rows_in/rows_out attributes.
func (s *Span) SetRows(in, out int) *Span {
	return s.SetInt("rows_in", int64(in)).SetInt("rows_out", int64(out))
}

// End closes the span, recording wall time and allocation deltas. The
// completion fields are written under the tracer lock so a live exporter
// (the ops plane's /trace endpoint) can walk the tree mid-run without
// racing. Spans whose duration exceeds the configured slow-span threshold
// additionally emit a warning record into the active run ledger.
func (s *Span) End() {
	if s.tracer == nil || s.ended {
		return
	}
	wall := time.Since(s.start)
	var allocs, bytes uint64
	capture := !s.noAllocs && s.tracer.captureAllocsOn()
	if capture {
		var m runtime.MemStats
		runtime.ReadMemStats(&m)
		allocs = m.Mallocs - s.startAllocs
		bytes = m.TotalAlloc - s.startBytes
	}
	s.tracer.mu.Lock()
	s.wall = wall
	s.allocs = allocs
	s.bytes = bytes
	s.ended = true
	if s.tracer.cur == s {
		s.tracer.cur = s.parent
	}
	s.tracer.mu.Unlock()
	maybeRecordSlowSpan(s.name, wall)
}

// Name returns the span name ("" for the no-op span).
func (s *Span) Name() string { return s.name }

// Duration returns the recorded wall time (zero until End).
func (s *Span) Duration() time.Duration { return s.wall }

// Allocs returns the number of heap objects allocated while the span was
// open (inclusive of children; zero when allocation capture is off).
func (s *Span) Allocs() uint64 { return s.allocs }

// Bytes returns the heap bytes allocated while the span was open.
func (s *Span) Bytes() uint64 { return s.bytes }

// Attrs returns the span's attributes in insertion order.
func (s *Span) Attrs() []Attr { return s.attrs }

// Children returns the nested spans in start order.
func (s *Span) Children() []*Span { return s.children }

// Attr returns the value of the named attribute and whether it was set.
func (s *Span) Attr(key string) (string, bool) {
	for _, a := range s.attrs {
		if a.Key == key {
			return a.Val, true
		}
	}
	return "", false
}

// Tracer collects spans into trees. The zero value is not usable; call
// NewTracer.
type Tracer struct {
	mu            sync.Mutex
	roots         []*Span
	cur           *Span
	captureAllocs bool
}

// NewTracer returns an empty tracer with allocation capture on.
func NewTracer() *Tracer { return &Tracer{captureAllocs: true} }

// CaptureAllocs toggles runtime.MemStats sampling per span (on by
// default). Turning it off removes the stop-the-world reads that
// ReadMemStats performs, at the cost of losing allocation columns.
func (t *Tracer) CaptureAllocs(on bool) {
	t.mu.Lock()
	t.captureAllocs = on
	t.mu.Unlock()
}

// StartSpan begins a span as a child of the innermost open span (or as a
// new root). The span is published into the tree with its start time set
// under the tracer lock, so concurrent exporters never observe a
// half-initialized span.
func (t *Tracer) StartSpan(name string, attrs ...Attr) *Span {
	s := &Span{tracer: t, name: name, attrs: attrs}
	if t.captureAllocsOn() {
		var m runtime.MemStats
		runtime.ReadMemStats(&m)
		s.startAllocs = m.Mallocs
		s.startBytes = m.TotalAlloc
	}
	t.mu.Lock()
	s.parent = t.cur
	if s.parent != nil {
		s.parent.children = append(s.parent.children, s)
	} else {
		t.roots = append(t.roots, s)
	}
	t.cur = s
	s.start = time.Now()
	t.mu.Unlock()
	return s
}

func (t *Tracer) captureAllocsOn() bool {
	t.mu.Lock()
	on := t.captureAllocs
	t.mu.Unlock()
	return on
}

// Roots returns the completed and open root spans in start order.
func (t *Tracer) Roots() []*Span {
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]*Span(nil), t.roots...)
}

// Reset drops all collected spans.
func (t *Tracer) Reset() {
	t.mu.Lock()
	t.roots = nil
	t.cur = nil
	t.mu.Unlock()
}

// Render returns the span forest as a flame-style indented trace: one line
// per span with wall time, allocation deltas and attributes, children
// indented under their parent. The walk happens under the tracer lock so
// it is safe while spans are still being opened and closed.
func (t *Tracer) Render() string {
	var b strings.Builder
	t.mu.Lock()
	for _, root := range t.roots {
		renderSpan(&b, root, 0)
	}
	t.mu.Unlock()
	return strings.TrimRight(b.String(), "\n")
}

func renderSpan(b *strings.Builder, s *Span, depth int) {
	b.WriteString(strings.Repeat("  ", depth))
	b.WriteString(s.name)
	if s.ended {
		fmt.Fprintf(b, " %s", s.wall.Round(time.Microsecond))
		if s.allocs > 0 || s.bytes > 0 {
			fmt.Fprintf(b, " allocs=%d bytes=%d", s.allocs, s.bytes)
		}
	} else {
		b.WriteString(" (open)")
	}
	for _, a := range s.attrs {
		fmt.Fprintf(b, " %s=%s", a.Key, a.Val)
	}
	b.WriteByte('\n')
	for _, c := range s.children {
		renderSpan(b, c, depth+1)
	}
}
