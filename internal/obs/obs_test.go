package obs

import (
	"encoding/json"
	"strings"
	"sync"
	"testing"
)

func TestRegistryConcurrentHammering(t *testing.T) {
	r := NewRegistry()
	const goroutines = 8
	const ops = 1000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < ops; i++ {
				r.Counter("ops_total").Inc()
				r.Gauge("last_op").Set(float64(i))
				r.Histogram("op_size", []float64{10, 100, 1000}).Observe(float64(i))
			}
		}(g)
	}
	wg.Wait()
	if got := r.Counter("ops_total").Value(); got != goroutines*ops {
		t.Errorf("counter = %d, want %d", got, goroutines*ops)
	}
	h := r.Histogram("op_size", nil)
	if got := h.Count(); got != goroutines*ops {
		t.Errorf("histogram count = %d, want %d", got, goroutines*ops)
	}
	// each goroutine observes 0..999: 11 values <= 10, 101 <= 100, 1000 <= 1000
	cum := h.Cumulative()
	want := []int64{11 * goroutines, 101 * goroutines, 1000 * goroutines, 1000 * goroutines}
	for i, w := range want {
		if cum[i] != w {
			t.Errorf("cumulative[%d] = %d, want %d", i, cum[i], w)
		}
	}
}

func TestDefaultHelpersRespectEnabled(t *testing.T) {
	Reset()
	Disable()
	Inc("disabled_total")
	SetGauge("disabled_gauge", 1)
	Observe("disabled_hist", 1)
	if got := Default().Counter("disabled_total").Value(); got != 0 {
		t.Errorf("disabled counter = %d, want 0", got)
	}
	Enable()
	defer Disable()
	defer Reset()
	Inc("enabled_total")
	Count("enabled_total", 2)
	SetGauge("enabled_gauge", 2.5)
	ObserveWith("enabled_hist", 3, []float64{1, 5})
	if got := Default().Counter("enabled_total").Value(); got != 3 {
		t.Errorf("enabled counter = %d, want 3", got)
	}
	if got := Default().Gauge("enabled_gauge").Value(); got != 2.5 {
		t.Errorf("enabled gauge = %v, want 2.5", got)
	}
	if got := Default().Histogram("enabled_hist", nil).Count(); got != 1 {
		t.Errorf("enabled histogram count = %d, want 1", got)
	}
}

func TestWritePrometheusGolden(t *testing.T) {
	r := NewRegistry()
	r.Counter("runs_total").Add(3)
	r.Gauge("workers").Set(1.5)
	h := r.Histogram("latency_seconds", []float64{0.5, 1})
	h.Observe(0.25)
	h.Observe(0.5)
	h.Observe(4)

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	want := `# TYPE runs_total counter
runs_total 3
# TYPE workers gauge
workers 1.5
# TYPE latency_seconds histogram
latency_seconds_bucket{le="0.5"} 2
latency_seconds_bucket{le="1"} 2
latency_seconds_bucket{le="+Inf"} 3
latency_seconds_sum 4.75
latency_seconds_count 3
`
	if b.String() != want {
		t.Errorf("prometheus output mismatch:\ngot:\n%s\nwant:\n%s", b.String(), want)
	}
}

func TestWriteJSON(t *testing.T) {
	r := NewRegistry()
	r.Counter("runs_total").Add(7)
	r.Gauge("workers").Set(4)
	r.Histogram("sizes", []float64{1, 2}).Observe(1.5)

	var b strings.Builder
	if err := r.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	var out struct {
		Counters   map[string]int64   `json:"counters"`
		Gauges     map[string]float64 `json:"gauges"`
		Histograms map[string]struct {
			Count   int64   `json:"count"`
			Sum     float64 `json:"sum"`
			Buckets []struct {
				LE    float64 `json:"le"`
				Count int64   `json:"count"`
			} `json:"buckets"`
		} `json:"histograms"`
	}
	if err := json.Unmarshal([]byte(b.String()), &out); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, b.String())
	}
	if out.Counters["runs_total"] != 7 {
		t.Errorf("counter = %d, want 7", out.Counters["runs_total"])
	}
	if out.Gauges["workers"] != 4 {
		t.Errorf("gauge = %v, want 4", out.Gauges["workers"])
	}
	h := out.Histograms["sizes"]
	if h.Count != 1 || h.Sum != 1.5 {
		t.Errorf("histogram = %+v, want count 1 sum 1.5", h)
	}
	if len(h.Buckets) != 3 || h.Buckets[1].Count != 1 {
		t.Errorf("buckets = %+v, want cumulative [0 1 1]", h.Buckets)
	}
}

func TestSanitize(t *testing.T) {
	cases := map[string]string{
		"good_name":     "good_name",
		"with-dash":     "with_dash",
		"9leading":      "_leading",
		"dots.and/more": "dots_and_more",
		"":              "_",
	}
	for in, want := range cases {
		if got := Sanitize(in); got != want {
			t.Errorf("Sanitize(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestBucketHelpers(t *testing.T) {
	lin := LinearBuckets(0.1, 0.1, 3)
	if lin[0] != 0.1 || len(lin) != 3 {
		t.Errorf("LinearBuckets = %v", lin)
	}
	exp := ExpBuckets(1, 2, 4)
	if exp[3] != 8 {
		t.Errorf("ExpBuckets = %v", exp)
	}
}
