package obs

import (
	"encoding/json"
	"io"
	"strconv"
	"time"
)

// chromeEvent is one Trace Event Format entry. Spans map to "complete"
// events (ph "X"): a name, a start timestamp, and a duration, both in
// microseconds, plus arbitrary string args. The format is consumed by
// chrome://tracing and by Perfetto's legacy JSON importer.
type chromeEvent struct {
	Name string            `json:"name"`
	Ph   string            `json:"ph"`
	Ts   float64           `json:"ts"` // microseconds since trace start
	Dur  float64           `json:"dur"`
	Pid  int               `json:"pid"`
	Tid  int               `json:"tid"`
	Args map[string]string `json:"args,omitempty"`
}

// chromeTrace is the JSON object form of the trace file (the bare-array
// form is also legal, but the object form allows metadata).
type chromeTrace struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// WriteChromeTrace exports the span forest in Chrome trace-event JSON:
// one complete event per span with the span's attributes — and its
// allocation deltas, when captured — as args. Each root tree gets its own
// tid so concurrent root spans land on separate tracks. Open spans (not
// yet ended, e.g. when exporting mid-run via the ops plane's /trace
// endpoint) are emitted with their duration so far and an "open":"true"
// arg. An empty tracer yields a valid file with zero events. The walk
// happens under the tracer lock, so exporting while spans are being
// opened and closed is safe.
func (t *Tracer) WriteChromeTrace(w io.Writer) error {
	now := time.Now()
	out := chromeTrace{TraceEvents: []chromeEvent{}, DisplayTimeUnit: "ms"}

	t.mu.Lock()
	var base time.Time
	for _, root := range t.roots {
		if base.IsZero() || root.start.Before(base) {
			base = root.start
		}
	}
	for tid, root := range t.roots {
		out.TraceEvents = appendChromeEvents(out.TraceEvents, root, base, now, tid+1)
	}
	t.mu.Unlock()

	enc := json.NewEncoder(w)
	return enc.Encode(out)
}

func appendChromeEvents(evs []chromeEvent, s *Span, base, now time.Time, tid int) []chromeEvent {
	ev := chromeEvent{
		Name: s.name,
		Ph:   "X",
		Ts:   float64(s.start.Sub(base)) / float64(time.Microsecond),
		Pid:  1,
		Tid:  tid,
	}
	if s.ended {
		ev.Dur = float64(s.wall) / float64(time.Microsecond)
	} else {
		ev.Dur = float64(now.Sub(s.start)) / float64(time.Microsecond)
	}
	if ev.Dur < 0 {
		ev.Dur = 0
	}
	n := len(s.attrs)
	if s.allocs > 0 || s.bytes > 0 || !s.ended {
		n += 3
	}
	if n > 0 {
		ev.Args = make(map[string]string, n)
		for _, a := range s.attrs {
			ev.Args[a.Key] = a.Val
		}
		if s.allocs > 0 || s.bytes > 0 {
			ev.Args["allocs"] = strconv.FormatUint(s.allocs, 10)
			ev.Args["alloc_bytes"] = strconv.FormatUint(s.bytes, 10)
		}
		if !s.ended {
			ev.Args["open"] = "true"
		}
	}
	evs = append(evs, ev)
	for _, c := range s.children {
		evs = appendChromeEvents(evs, c, base, now, tid)
	}
	return evs
}
