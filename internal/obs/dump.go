package obs

import (
	"fmt"
	"os"
	"strings"
)

// DumpFiles writes the default registry and tracer to the given paths and
// is the implementation behind the cmd binaries' -metrics/-trace flags.
// An empty path skips that dump. The metrics file is Prometheus text
// format unless the path ends in .json, in which case it is the JSON
// export. The trace file is the indented span tree — or, when the path
// ends in .json, Chrome trace-event JSON loadable by chrome://tracing and
// Perfetto.
func DumpFiles(metricsPath, tracePath string) error {
	if metricsPath != "" {
		var b strings.Builder
		var err error
		if strings.HasSuffix(metricsPath, ".json") {
			err = defaultRegistry.WriteJSON(&b)
		} else {
			err = defaultRegistry.WritePrometheus(&b)
		}
		if err != nil {
			return fmt.Errorf("obs: encoding metrics: %w", err)
		}
		if err := os.WriteFile(metricsPath, []byte(b.String()), 0o644); err != nil {
			return fmt.Errorf("obs: writing metrics: %w", err)
		}
	}
	if tracePath != "" {
		var b strings.Builder
		if strings.HasSuffix(tracePath, ".json") {
			if err := defaultTracer.WriteChromeTrace(&b); err != nil {
				return fmt.Errorf("obs: encoding trace: %w", err)
			}
		} else {
			b.WriteString(defaultTracer.Render())
			b.WriteByte('\n')
		}
		if err := os.WriteFile(tracePath, []byte(b.String()), 0o644); err != nil {
			return fmt.Errorf("obs: writing trace: %w", err)
		}
	}
	return nil
}
