package obs

import (
	"os"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestSpanTreeNesting(t *testing.T) {
	tr := NewTracer()
	tr.CaptureAllocs(false)
	root := tr.StartSpan("root", Str("phase", "run"))
	c1 := tr.StartSpan("child1")
	g := tr.StartSpan("grandchild")
	g.SetRows(10, 5)
	g.End()
	c1.End()
	c2 := tr.StartSpan("child2", Int("n", 7))
	c2.End()
	root.End()

	roots := tr.Roots()
	if len(roots) != 1 || roots[0].Name() != "root" {
		t.Fatalf("roots = %v", roots)
	}
	kids := roots[0].Children()
	if len(kids) != 2 || kids[0].Name() != "child1" || kids[1].Name() != "child2" {
		t.Fatalf("children of root wrong: %v", kids)
	}
	gk := kids[0].Children()
	if len(gk) != 1 || gk[0].Name() != "grandchild" {
		t.Fatalf("grandchild missing: %v", gk)
	}
	if v, ok := gk[0].Attr("rows_out"); !ok || v != "5" {
		t.Errorf("rows_out attr = %q, %v", v, ok)
	}

	out := tr.Render()
	lines := strings.Split(out, "\n")
	if len(lines) != 4 {
		t.Fatalf("render has %d lines:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "root ") {
		t.Errorf("line 0 = %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], "  child1 ") {
		t.Errorf("line 1 = %q", lines[1])
	}
	if !strings.HasPrefix(lines[2], "    grandchild ") || !strings.Contains(lines[2], "rows_in=10 rows_out=5") {
		t.Errorf("line 2 = %q", lines[2])
	}
	if !strings.HasPrefix(lines[3], "  child2 ") || !strings.Contains(lines[3], "n=7") {
		t.Errorf("line 3 = %q", lines[3])
	}
}

func TestSpanRecordsDurationAndAllocs(t *testing.T) {
	tr := NewTracer()
	s := tr.StartSpan("work")
	var sink [][]byte
	for i := 0; i < 200; i++ {
		sink = append(sink, make([]byte, 64))
	}
	time.Sleep(time.Millisecond)
	s.End()
	_ = sink
	if s.Duration() < time.Millisecond {
		t.Errorf("duration = %v, want >= 1ms", s.Duration())
	}
	if s.Allocs() < 100 {
		t.Errorf("allocs = %d, want >= 100", s.Allocs())
	}
	if s.Bytes() < 64*100 {
		t.Errorf("bytes = %d, want >= %d", s.Bytes(), 64*100)
	}
}

func TestSpanOpenRender(t *testing.T) {
	tr := NewTracer()
	tr.CaptureAllocs(false)
	tr.StartSpan("never_ended")
	if out := tr.Render(); !strings.Contains(out, "never_ended (open)") {
		t.Errorf("open span not marked: %q", out)
	}
}

// The no-op contract: with observability disabled, the full instrumented
// call pattern — span start/annotate/end, counters, gauges, histograms,
// progress — performs zero heap allocations.
func TestNoopModeZeroAllocations(t *testing.T) {
	Disable()
	Reset()
	allocs := testing.AllocsPerRun(200, func() {
		sp := StartSpan("pipeline.op")
		sp.SetStr("kind", "Filter").SetInt("node", 3).SetRows(100, 40)
		Inc("pipeline_memo_hits_total")
		Count("rows_total", 40)
		SetGauge("workers", 8)
		Observe("latency_seconds", 0.1)
		ObserveWith("batch_size", 12, nil)
		p := NewProgress("loop", 100)
		p.Tick(1)
		p.Done()
		_ = p.Snapshot()
		sp.End()
	})
	if allocs != 0 {
		t.Errorf("no-op instrumentation allocated %v objects per run, want 0", allocs)
	}
}

func TestProgressSnapshotAndMetrics(t *testing.T) {
	Enable()
	defer Disable()
	defer Reset()
	Reset()
	p := NewProgress("clean loop", 10) // name gets sanitized
	p.Tick(3)
	p.Tick(1)
	s := p.Snapshot()
	if s.Done != 4 || s.Total != 10 {
		t.Fatalf("snapshot = %+v", s)
	}
	if s.Rate <= 0 {
		t.Errorf("rate = %v, want > 0", s.Rate)
	}
	if s.ETA <= 0 {
		t.Errorf("eta = %v, want > 0", s.ETA)
	}
	if str := s.String(); !strings.Contains(str, "4/10") {
		t.Errorf("snapshot string = %q", str)
	}
	if got := Default().Gauge("progress_clean_loop_done").Value(); got != 4 {
		t.Errorf("done gauge = %v, want 4", got)
	}
	if got := Default().Gauge("progress_clean_loop_total").Value(); got != 10 {
		t.Errorf("total gauge = %v, want 10", got)
	}
	p.Done()
	if got := Default().Histogram("progress_clean_loop_seconds", nil).Count(); got != 1 {
		t.Errorf("seconds histogram count = %d, want 1", got)
	}
}

func TestDumpFiles(t *testing.T) {
	Enable()
	defer Disable()
	defer Reset()
	Reset()
	Inc("dump_runs_total")
	sp := StartSpan("dump_root")
	sp.SetRows(3, 2)
	sp.End()

	dir := t.TempDir()
	prom := dir + "/m.prom"
	jsonPath := dir + "/m.json"
	trace := dir + "/t.txt"
	if err := DumpFiles(prom, trace); err != nil {
		t.Fatal(err)
	}
	if err := DumpFiles(jsonPath, ""); err != nil {
		t.Fatal(err)
	}
	mustContain(t, prom, "# TYPE dump_runs_total counter")
	mustContain(t, prom, "dump_runs_total 1")
	mustContain(t, jsonPath, `"dump_runs_total": 1`)
	mustContain(t, trace, "dump_root")
	mustContain(t, trace, "rows_out=2")
}

func mustContain(t *testing.T, path, needle string) {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("reading %s: %v", path, err)
	}
	if !strings.Contains(string(data), needle) {
		t.Errorf("%s does not contain %q:\n%s", path, needle, data)
	}
}

// StartChild must attach children to an explicit parent from concurrent
// goroutines without corrupting the tree or racing (run under -race).
func TestSpanStartChildConcurrent(t *testing.T) {
	tr := NewTracer()
	tr.CaptureAllocs(false)
	root := tr.StartSpan("parallel_loop")
	const workers = 8
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c := root.StartChild("item", Int("worker", int64(w)))
			c.SetInt("n", 1)
			c.End()
		}(w)
	}
	wg.Wait()
	root.End()

	roots := tr.Roots()
	if len(roots) != 1 {
		t.Fatalf("roots = %d, want 1", len(roots))
	}
	kids := roots[0].Children()
	if len(kids) != workers {
		t.Fatalf("children = %d, want %d", len(kids), workers)
	}
	for _, c := range kids {
		if c.Name() != "item" {
			t.Errorf("child name = %q", c.Name())
		}
		if !c.ended {
			t.Error("child not ended")
		}
		if c.Allocs() != 0 {
			t.Errorf("child alloc delta = %d, want 0 (capture skipped for concurrent children)", c.Allocs())
		}
	}
	// the implicit stack must be untouched by StartChild: a new span is a root
	next := tr.StartSpan("after")
	next.End()
	if got := len(tr.Roots()); got != 2 {
		t.Errorf("roots after = %d, want 2", got)
	}
}

// The no-op span's StartChild stays no-op and allocation-free.
func TestStartChildNoop(t *testing.T) {
	Disable()
	sp := StartSpan("off")
	allocs := testing.AllocsPerRun(100, func() {
		c := sp.StartChild("child")
		c.End()
	})
	if allocs != 0 {
		t.Errorf("StartChild allocated %v times while disabled", allocs)
	}
}

// AddGauge accumulates deltas (the in-flight pattern) and is disabled-safe.
func TestAddGauge(t *testing.T) {
	Disable()
	AddGauge("inflight_test", 5) // must not touch the registry
	Enable()
	defer Disable()
	defer Reset()
	Reset()
	AddGauge("inflight_test", 2)
	AddGauge("inflight_test", 1)
	AddGauge("inflight_test", -3)
	if got := Default().Gauge("inflight_test").Value(); got != 0 {
		t.Errorf("gauge = %v, want 0", got)
	}
}
