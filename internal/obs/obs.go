// Package obs provides zero-dependency observability primitives for the
// nde engines: a thread-safe metrics registry (counters, gauges,
// fixed-bucket histograms) exportable as Prometheus text format or JSON,
// lightweight context-free spans that record wall time, row counts and
// allocation deltas and assemble into a renderable tree, and a progress
// primitive (rate + ETA) for long-running loops.
//
// Observability is DISABLED by default and the instrumented hot paths are
// allocation-free in that state: StartSpan returns a shared no-op span,
// NewProgress returns a shared no-op progress, and the package-level
// metric helpers return before touching the registry. Enable() turns
// collection on process-wide; the cmd/ binaries do so when the user passes
// -metrics or -trace.
package obs

import "sync/atomic"

var enabled atomic.Bool

// Enabled reports whether observability collection is on. It is a single
// atomic load, safe to call on hot paths.
func Enabled() bool { return enabled.Load() }

// Enable turns on metric, span and progress collection process-wide.
func Enable() { enabled.Store(true) }

// Disable turns collection off again; subsequent instrumentation calls
// become no-ops. Already-collected data stays in the registry and tracer
// until Reset.
func Disable() { enabled.Store(false) }

var (
	defaultRegistry = NewRegistry()
	defaultTracer   = NewTracer()
)

// Default returns the process-wide registry that the package-level metric
// helpers and the cmd dump flags use.
func Default() *Registry { return defaultRegistry }

// DefaultTracer returns the process-wide tracer that StartSpan uses.
func DefaultTracer() *Tracer { return defaultTracer }

// Reset clears the default registry and tracer. Intended for tests and for
// long-lived processes that dump and restart collection windows.
func Reset() {
	defaultRegistry.Reset()
	defaultTracer.Reset()
}

// Count adds delta to the named counter in the default registry. No-op
// (and allocation-free) while observability is disabled.
func Count(name string, delta int64) {
	if !Enabled() {
		return
	}
	defaultRegistry.Counter(name).Add(delta)
}

// Inc increments the named counter by one.
func Inc(name string) { Count(name, 1) }

// SetGauge sets the named gauge in the default registry. No-op while
// disabled.
func SetGauge(name string, v float64) {
	if !Enabled() {
		return
	}
	defaultRegistry.Gauge(name).Set(v)
}

// AddGauge adds delta (which may be negative) to the named gauge in the
// default registry — the in-flight pattern: +1 when a concurrent unit of
// work starts, -1 when it ends. Safe for concurrent use; no-op while
// disabled.
func AddGauge(name string, delta float64) {
	if !Enabled() {
		return
	}
	defaultRegistry.Gauge(name).Add(delta)
}

// Observe records v into the named histogram in the default registry,
// creating it with DefBuckets if needed. No-op while disabled.
func Observe(name string, v float64) {
	if !Enabled() {
		return
	}
	defaultRegistry.Histogram(name, nil).Observe(v)
}

// ObserveWith records v into the named histogram, creating it with the
// given bucket upper bounds if it does not exist yet. No-op while
// disabled.
func ObserveWith(name string, v float64, bounds []float64) {
	if !Enabled() {
		return
	}
	defaultRegistry.Histogram(name, bounds).Observe(v)
}
