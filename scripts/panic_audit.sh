#!/bin/sh
# panic_audit.sh — the error-handling contract, enforced. Lists every
# panic( call site that sits inside an exported function (not named Must*)
# in non-test code, and fails if a site is missing from the checked-in
# allowlist (scripts/panic_allowlist.txt).
#
# The allowlist is the set of deliberate panics: Must* helpers aside, the
# repo keeps panics only for programmer bugs — internal kernels whose
# preconditions are validated upstream (see README "Error handling
# contract"). Adding a new panic to an exported function requires adding
# it here, which makes the choice reviewable instead of accidental.
#
# Usage: scripts/panic_audit.sh [-update]
#   -update  rewrite the allowlist from the current tree instead of diffing
set -eu
cd "$(dirname "$0")/.."

allowlist=scripts/panic_allowlist.txt

scan() {
    find . -name '*.go' ! -name '*_test.go' -not -path './.git/*' | sort | while read -r f; do
        awk -v file="${f#./}" '
            /^func / {
                fn = $0
                sub(/^func +/, "", fn)
                sub(/^\([^)]*\) +/, "", fn)  # drop method receiver
                sub(/[ ([].*$/, "", fn)      # drop params / type params
                name = fn
            }
            /panic\(/ {
                if (name ~ /^[A-Z]/ && name !~ /^Must/) print file ":" name
            }
        ' "$f"
    done | sort -u
}

if [ "${1:-}" = "-update" ]; then
    scan > "$allowlist"
    echo "panic_audit: rewrote $allowlist ($(wc -l < "$allowlist") entries)"
    exit 0
fi

current=$(scan)
new=$(printf '%s\n' "$current" | grep -Fxv -f "$allowlist" || true)
if [ -n "$new" ]; then
    echo "panic_audit: new panic sites in exported non-Must* functions:" >&2
    printf '%s\n' "$new" >&2
    echo "either return an error instead, or (for a genuine programmer-bug" >&2
    echo "precondition) run scripts/panic_audit.sh -update and justify the" >&2
    echo "entry in the PR" >&2
    exit 1
fi
echo "panic_audit: OK ($(printf '%s\n' "$current" | grep -c . ) allowlisted sites)"
