#!/bin/sh
# check.sh — the repo's pre-merge gate: vet, formatting, build, and the
# full test suite under the race detector. `make check` runs this.
set -eu
cd "$(dirname "$0")/.."

echo "==> go vet ./..."
go vet ./...

# contract-enforcing static analysis (determinism, panicsite, errwrap,
# obsguard; see DESIGN.md §10). Skip with NDE_SKIP_LINT=1 when in a hurry.
if [ "${NDE_SKIP_LINT:-0}" != "1" ]; then
    echo "==> nde-lint"
    go run ./cmd/nde-lint
fi

# gofmt gate over tracked sources; testdata is excluded because the lint
# golden-test fixtures are deliberately unformatted.
echo "==> gofmt -l"
unformatted=$(git ls-files '*.go' | grep -v testdata | xargs gofmt -l)
if [ -n "$unformatted" ]; then
    echo "gofmt needed on:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "==> go build ./..."
go build ./...

echo "==> go test -race ./..."
go test -race ./...

# short deterministic fuzz pass over the CSV reader: replays the checked-in
# corpus, then a couple of seconds of fresh mutation
echo "==> go test -fuzz FuzzReadCSV (2s)"
go test -run='^FuzzReadCSV$' -fuzz='^FuzzReadCSV$' -fuzztime=2s ./internal/frame/

# race-stress gate at the quick (time-budgeted) scale; `make stress` runs
# the full GOMAXPROCS sweep. Skip with NDE_SKIP_STRESS=1 when in a hurry.
if [ "${NDE_SKIP_STRESS:-0}" != "1" ]; then
    echo "==> scripts/stress.sh quick"
    sh scripts/stress.sh quick
fi

# live ops plane smoke test: real HTTP scrape of a running binary plus a
# clean interrupt shutdown. Skip with NDE_SKIP_SMOKE=1.
if [ "${NDE_SKIP_SMOKE:-0}" != "1" ]; then
    echo "==> scripts/ops_smoke.sh"
    sh scripts/ops_smoke.sh
    echo "==> scripts/serve_smoke.sh"
    sh scripts/serve_smoke.sh
fi

# opt-in: perf-regression gate — fresh benchmark run compared against the
# checked-in BENCH_*.json baselines, failing on >15% ns/op regression
# (refresh the baselines themselves with `make bench`)
if [ "${NDE_BENCH:-0}" = "1" ]; then
    echo "==> scripts/bench_diff.sh"
    sh scripts/bench_diff.sh
fi

echo "OK"
