#!/bin/sh
# stress.sh — the race-stress gate: hammer the concurrent facade entry
# points (kNN-Shapley, what-if batches, iterative cleaning) from many
# goroutines under the race detector, asserting bit-identical results vs.
# serial baselines, across a GOMAXPROCS sweep. `make stress` runs the full
# sweep; `sh scripts/stress.sh quick` is the time-budgeted variant that
# scripts/check.sh runs.
set -eu
cd "$(dirname "$0")/.."

procs="$(getconf _NPROCESSORS_ONLN 2>/dev/null || echo 4)"

if [ "${1:-full}" = "quick" ]; then
    # quick: default (small) scale, one pass, current GOMAXPROCS only
    echo "==> stress quick: go test -race -run TestStress ."
    go test -race -count=1 -run 'TestStress' .
    exit 0
fi

# full: heavy scale, two passes per GOMAXPROCS setting so the second pass
# starts with a warm process image, sweeping serial -> 2 -> all cores
for p in 1 2 "$procs"; do
    [ "$p" = 2 ] && [ "$procs" -lt 2 ] && continue
    echo "==> stress full: GOMAXPROCS=$p go test -race -count=2 -run TestStress ."
    NDE_STRESS=1 GOMAXPROCS="$p" go test -race -count=2 -run 'TestStress' .
done

echo "stress OK"
