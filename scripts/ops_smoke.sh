#!/bin/sh
# ops_smoke.sh — end-to-end smoke test of the live ops plane: build
# nde-pipeline, run it with -ops and -ops-wait, scrape /healthz, /metrics
# and /trace over real HTTP while the server is up, then interrupt it and
# assert a clean shutdown plus a well-formed run ledger. `make ops-smoke`
# runs this; scripts/check.sh includes it unless NDE_SKIP_SMOKE=1.
set -eu
cd "$(dirname "$0")/.."

tmp="$(mktemp -d)"
pid=""
cleanup() {
    [ -n "$pid" ] && kill "$pid" 2>/dev/null || true
    rm -rf "$tmp"
}
trap cleanup EXIT

fetch() { # fetch URL — curl or wget, whichever exists
    if command -v curl >/dev/null 2>&1; then
        curl -fsS "$1"
    else
        wget -qO- "$1"
    fi
}

echo "==> building nde-pipeline"
go build -o "$tmp/nde-pipeline" ./cmd/nde-pipeline

echo "==> starting nde-pipeline -ops 127.0.0.1:0 -ops-wait"
"$tmp/nde-pipeline" -n 120 -seed 1 \
    -ops 127.0.0.1:0 -ops-wait \
    -ledger "$tmp/run.jsonl" \
    >"$tmp/stdout" 2>"$tmp/stderr" &
pid=$!

# wait for the server address notice on stderr
addr=""
i=0
while [ $i -lt 100 ]; do
    addr="$(sed -n 's/^ops: serving telemetry on //p' "$tmp/stderr" | head -n1)"
    [ -n "$addr" ] && break
    if ! kill -0 "$pid" 2>/dev/null; then
        echo "FAIL: nde-pipeline exited before serving" >&2
        cat "$tmp/stderr" >&2
        exit 1
    fi
    sleep 0.1
    i=$((i + 1))
done
if [ -z "$addr" ]; then
    echo "FAIL: no ops address on stderr after 10s" >&2
    exit 1
fi
echo "    ops server at $addr"

echo "==> GET /healthz"
health="$(fetch "http://$addr/healthz")"
case "$health" in
*ok*) ;;
*)
    echo "FAIL: /healthz returned '$health'" >&2
    exit 1
    ;;
esac

echo "==> GET /metrics (expect pipeline_memo_misses_total)"
i=0
while [ $i -lt 100 ]; do
    if fetch "http://$addr/metrics" >"$tmp/metrics" 2>/dev/null &&
        grep -q '^pipeline_memo_misses_total ' "$tmp/metrics"; then
        break
    fi
    sleep 0.1
    i=$((i + 1))
done
grep '^pipeline_memo_misses_total ' "$tmp/metrics" || {
    echo "FAIL: pipeline_memo_misses_total never appeared in /metrics" >&2
    exit 1
}

echo "==> GET /trace (expect Chrome trace JSON)"
fetch "http://$addr/trace" >"$tmp/trace.json"
grep -q '"traceEvents"' "$tmp/trace.json" || {
    echo "FAIL: /trace is not Chrome trace JSON" >&2
    exit 1
}

echo "==> interrupting (clean -ops-wait shutdown)"
kill -INT "$pid"
status=0
wait "$pid" || status=$?
pid=""
if [ "$status" -ne 0 ]; then
    echo "FAIL: exit status $status after interrupt, want 0" >&2
    cat "$tmp/stderr" >&2
    exit 1
fi

echo "==> checking run ledger"
head -n1 "$tmp/run.jsonl" | grep -q '"t":"header"' || {
    echo "FAIL: ledger does not start with a header record" >&2
    head -n3 "$tmp/run.jsonl" >&2
    exit 1
}
grep -q '"op":"BuildHiringPipeline"' "$tmp/run.jsonl" || {
    echo "FAIL: ledger has no BuildHiringPipeline op record" >&2
    exit 1
}

echo "OK"
