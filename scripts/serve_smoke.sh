#!/bin/sh
# serve_smoke.sh — end-to-end smoke test of the nde-serve daemon, built
# with the race detector: register a dataset over real HTTP, hammer
# /v1/importance from concurrent clients and assert the neighbor index
# was built exactly once (singleflight), run a what-if, drain on SIGTERM
# and check the flushed ledger; then a second instance with a budget of
# one slot and no queue to assert load shedding (429) and drain with an
# async run still in flight. `make serve-smoke` runs this; scripts/
# check.sh includes it unless NDE_SKIP_SMOKE=1.
set -eu
cd "$(dirname "$0")/.."

tmp="$(mktemp -d)"
pid=""
cleanup() {
    [ -n "$pid" ] && kill "$pid" 2>/dev/null || true
    rm -rf "$tmp"
}
trap cleanup EXIT

fetch() { # fetch URL — curl or wget, whichever exists
    if command -v curl >/dev/null 2>&1; then
        curl -fsS "$1"
    else
        wget -qO- "$1"
    fi
}

post() { # post URL BODY-FILE — prints response body, fails on HTTP error
    if command -v curl >/dev/null 2>&1; then
        curl -fsS -X POST -H 'Content-Type: application/json' \
            --data-binary @"$2" "$1"
    else
        wget -qO- --header='Content-Type: application/json' \
            --post-file="$2" "$1"
    fi
}

post_any() { # post URL BODY-FILE — prints response body, any status
    if command -v curl >/dev/null 2>&1; then
        curl -sS -X POST -H 'Content-Type: application/json' \
            --data-binary @"$2" "$1" || true
    else
        wget -qO- --content-on-error --header='Content-Type: application/json' \
            --post-file="$2" "$1" || true
    fi
}

start_daemon() { # start_daemon STDERR-FILE ARGS... — sets pid and addr
    err="$1"
    shift
    "$tmp/nde-serve" -addr 127.0.0.1:0 "$@" 2>"$err" &
    pid=$!
    addr=""
    i=0
    while [ $i -lt 100 ]; do
        addr="$(sed -n 's/^nde-serve: listening on //p' "$err" | head -n1)"
        [ -n "$addr" ] && break
        if ! kill -0 "$pid" 2>/dev/null; then
            echo "FAIL: nde-serve exited before serving" >&2
            cat "$err" >&2
            exit 1
        fi
        sleep 0.1
        i=$((i + 1))
    done
    if [ -z "$addr" ]; then
        echo "FAIL: no listen address on stderr after 10s" >&2
        exit 1
    fi
}

drain_daemon() { # drain_daemon STDERR-FILE — SIGTERM, expect exit 0
    kill -TERM "$pid"
    status=0
    wait "$pid" || status=$?
    pid=""
    if [ "$status" -ne 0 ]; then
        echo "FAIL: exit status $status after SIGTERM, want 0" >&2
        cat "$1" >&2
        exit 1
    fi
    grep -q 'in-flight work finished' "$1" || {
        echo "FAIL: no drain notice on stderr" >&2
        cat "$1" >&2
        exit 1
    }
}

echo "==> building nde-serve (race detector on)"
go build -race -o "$tmp/nde-serve" ./cmd/nde-serve

# Deterministic two-cluster registration bodies. The big one makes the
# neighbor-index build slow enough that concurrent clients overlap it.
awk 'BEGIN {
    n = 4000; v = 600;
    printf "{\"train\":{\"x\":[";
    for (i = 0; i < n; i++) {
        c = i % 2; b = c * 4; j = (i % 17) * 0.05;
        printf "%s[%g,%g,%g,%g]", (i ? "," : ""), b + j, b - j, b + 2 * j, b - 2 * j;
    }
    printf "],\"y\":[";
    for (i = 0; i < n; i++) printf "%s%d", (i ? "," : ""), i % 2;
    printf "]},\"valid\":{\"x\":[";
    for (i = 0; i < v; i++) {
        c = i % 2; b = c * 4; j = (i % 13) * 0.07;
        printf "%s[%g,%g,%g,%g]", (i ? "," : ""), b + j, b - j, b + 2 * j, b - 2 * j;
    }
    printf "],\"y\":[";
    for (i = 0; i < v; i++) printf "%s%d", (i ? "," : ""), i % 2;
    printf "]}}";
}' >"$tmp/big.json"

awk 'BEGIN {
    n = 400; v = 60;
    printf "{\"train\":{\"x\":[";
    for (i = 0; i < n; i++) {
        c = i % 2; b = c * 4; j = (i % 11) * 0.06;
        printf "%s[%g,%g]", (i ? "," : ""), b + j, b - j;
    }
    printf "],\"y\":[";
    for (i = 0; i < n; i++) printf "%s%d", (i ? "," : ""), (i % 7 == 0 ? 1 - i % 2 : i % 2);
    printf "]},\"valid\":{\"x\":[";
    for (i = 0; i < v; i++) {
        c = i % 2; b = c * 4;
        printf "%s[%g,%g]", (i ? "," : ""), b + (i % 9) * 0.08, b;
    }
    printf "],\"y\":[";
    for (i = 0; i < v; i++) printf "%s%d", (i ? "," : ""), i % 2;
    printf "]},\"test\":{\"x\":[";
    for (i = 0; i < v; i++) {
        c = i % 2; b = c * 4;
        printf "%s[%g,%g]", (i ? "," : ""), b + (i % 8) * 0.09, b;
    }
    printf "],\"y\":[";
    for (i = 0; i < v; i++) printf "%s%d", (i ? "," : ""), i % 2;
    printf "]},\"truth\":[";
    for (i = 0; i < n; i++) printf "%s%d", (i ? "," : ""), i % 2;
    printf "]}";
}' >"$tmp/clean.json"

echo "==> phase A: daemon with a wide budget (every client runs at once)"
start_daemon "$tmp/stderrA" -slots 12 -ledger "$tmp/runA.jsonl"
echo "    listening on $addr"

fetch "http://$addr/healthz" | grep -q ok || {
    echo "FAIL: /healthz" >&2
    exit 1
}
fetch "http://$addr/readyz" | grep -q ready || {
    echo "FAIL: /readyz" >&2
    exit 1
}

echo "==> registering dataset"
post "http://$addr/v1/datasets" "$tmp/big.json" >"$tmp/reg.json"
id="$(sed -n 's/.*"id":"\(d-[0-9a-f]*\)".*/\1/p' "$tmp/reg.json")"
[ -n "$id" ] || {
    echo "FAIL: no dataset id in $(cat "$tmp/reg.json")" >&2
    exit 1
}
echo "    dataset $id"

# Nine concurrent clients: six distinct k values prove the neighbor index
# is shared across different score keys (one build), and three identical
# k=5 clients prove score-store singleflight (later arrivals block on the
# winner's multi-second Shapley build and are counted as waits).
echo "==> 9 concurrent importance clients (k 3..8 plus three k=5)"
clients=""
i=0
for k in 3 4 5 6 7 8 5 5 5; do
    i=$((i + 1))
    printf '{"dataset":"%s","k":%d}' "$id" "$k" >"$tmp/imp$i.json"
    post "http://$addr/v1/importance" "$tmp/imp$i.json" >"$tmp/scores$i.json" &
    clients="$clients $!"
done
# wait on the client pids only — a bare `wait` would also wait on the
# backgrounded daemon and hang forever
for c in $clients; do
    wait "$c" || {
        echo "FAIL: an importance client failed" >&2
        exit 1
    }
done
i=0
for k in 3 4 5 6 7 8 5 5 5; do
    i=$((i + 1))
    grep -q '"scores"' "$tmp/scores$i.json" || {
        echo "FAIL: importance client $i (k=$k) returned $(head -c200 "$tmp/scores$i.json")" >&2
        exit 1
    }
done

echo "==> metrics: neighbor index built once, identical clients waited"
fetch "http://$addr/metrics" >"$tmp/metricsA"
misses="$(awk '$1 == "importance_neighbor_index_misses_total" {print $2}' "$tmp/metricsA")"
waits="$(awk '$1 == "serve_scores_waits_total" {print $2}' "$tmp/metricsA")"
if [ "${misses:-0}" != "1" ]; then
    echo "FAIL: importance_neighbor_index_misses_total = '$misses', want 1 (duplicate index builds)" >&2
    exit 1
fi
if [ "${waits:-0}" -lt 1 ] 2>/dev/null; then
    echo "FAIL: serve_scores_waits_total = '$waits', want > 0 (identical clients never shared the in-flight build)" >&2
    exit 1
fi
echo "    index misses=$misses score waits=$waits"

echo "==> what-if removals"
printf '{"dataset":"%s","variants":[{"name":"drop-ten","remove":[0,1,2,3,4,5,6,7,8,9]}]}' "$id" >"$tmp/wi.json"
post "http://$addr/v1/whatif" "$tmp/wi.json" | grep -q '"drop-ten"' || {
    echo "FAIL: what-if response missing variant" >&2
    exit 1
}

echo "==> SIGTERM drain (phase A)"
drain_daemon "$tmp/stderrA"
head -n1 "$tmp/runA.jsonl" | grep -q '"t":"header"' || {
    echo "FAIL: ledger A does not start with a header" >&2
    exit 1
}
for op in ServeRegister ServeImportance ServeWhatIf; do
    grep -q "\"op\":\"$op\"" "$tmp/runA.jsonl" || {
        echo "FAIL: ledger A missing $op record" >&2
        exit 1
    }
done

echo "==> phase B: daemon with -slots 1 -queue 1 (load shedding)"
start_daemon "$tmp/stderrB" -slots 1 -queue 1 -ledger "$tmp/runB.jsonl"
echo "    listening on $addr"

post "http://$addr/v1/datasets" "$tmp/clean.json" >"$tmp/regB.json"
idB="$(sed -n 's/.*"id":"\(d-[0-9a-f]*\)".*/\1/p' "$tmp/regB.json")"
[ -n "$idB" ] || {
    echo "FAIL: no dataset id in $(cat "$tmp/regB.json")" >&2
    exit 1
}
# the big dataset again: its cold-cache importance run holds the only
# slot for several seconds, long enough to observe the queue and the shed
post "http://$addr/v1/datasets" "$tmp/big.json" >"$tmp/regBig.json"
idBig="$(sed -n 's/.*"id":"\(d-[0-9a-f]*\)".*/\1/p' "$tmp/regBig.json")"

echo "==> async importance on the big dataset occupies the only slot"
printf '{"dataset":"%s","k":3,"async":true}' "$idBig" >"$tmp/impBig.json"
post "http://$addr/v1/importance" "$tmp/impBig.json" >"$tmp/occresp.json"
grep -q '"run":"r-' "$tmp/occresp.json" || {
    echo "FAIL: async importance not accepted: $(cat "$tmp/occresp.json")" >&2
    exit 1
}

echo "==> async cleaning fills the queue"
printf '{"dataset":"%s","strategies":["knn-shapley","random"],"batch":4,"budget":80,"async":true}' "$idB" >"$tmp/cl.json"
# blocks in the admission queue until the slot frees, so run in background
post "http://$addr/v1/cleaning" "$tmp/cl.json" >"$tmp/clresp.json" &
clpid=$!
i=0
while [ $i -lt 100 ]; do
    depth="$(fetch "http://$addr/metrics" | awk '$1 == "serve_budget_queue_depth" {print $2}')"
    [ "${depth:-0}" = "1" ] && break
    sleep 0.1
    i=$((i + 1))
done
if [ "${depth:-0}" != "1" ]; then
    echo "FAIL: serve_budget_queue_depth = '$depth', want 1 (cleaning never queued)" >&2
    exit 1
fi

echo "==> next computation is shed with 429/busy (slot and queue both full)"
printf '{"dataset":"%s","k":3}' "$idB" >"$tmp/impB.json"
post_any "http://$addr/v1/importance" "$tmp/impB.json" >"$tmp/shed.json"
grep -q '"class":"busy"' "$tmp/shed.json" || {
    echo "FAIL: expected busy shed, got $(head -c200 "$tmp/shed.json")" >&2
    exit 1
}

wait "$clpid" || {
    echo "FAIL: queued async cleaning client failed" >&2
    exit 1
}
grep -q '"run":"r-' "$tmp/clresp.json" || {
    echo "FAIL: async cleaning not accepted: $(cat "$tmp/clresp.json")" >&2
    exit 1
}

echo "==> SIGTERM drains with async runs still in flight"
drain_daemon "$tmp/stderrB"
grep -q '"op":"ServeCleaning"' "$tmp/runB.jsonl" || {
    echo "FAIL: ledger B missing the drained ServeCleaning record" >&2
    exit 1
}

echo "OK"
