#!/bin/sh
# bench_diff.sh — the perf-regression gate: re-run the tracked benchmark
# series into a temp directory and compare each benchmark's ns/op against
# the checked-in BENCH_*.json baselines. Fails when any benchmark regresses
# by more than the threshold (default 15%). Benchmarks present only on one
# side (just added, or just retired) are reported but never fail the gate —
# refresh the baselines with `make bench` when the set changes on purpose.
# `make bench-diff` runs this; scripts/check.sh runs it when NDE_BENCH=1.
#
# Usage: sh scripts/bench_diff.sh
#   NDE_BENCH_DIFF_PCT=15   allowed ns/op regression percentage
#   NDE_BENCHTIME=1s        benchtime per benchmark (passed through)
set -eu
cd "$(dirname "$0")/.."

threshold="${NDE_BENCH_DIFF_PCT:-15}"

fresh="$(mktemp -d)"
trap 'rm -rf "$fresh"' EXIT

echo "==> fresh benchmark run (comparing against checked-in baselines, +${threshold}% ns/op allowed)"
NDE_BENCH_OUTDIR="$fresh" sh scripts/bench.sh

# extract NAME NS pairs from one of our generated JSON files (one
# benchmark object per line, a format bench.sh controls)
extract() {
    awk '
/"name":/ {
    line = $0
    sub(/.*"name": "/, "", line); name = line; sub(/".*/, "", name)
    line = $0
    sub(/.*"ns_per_op": /, "", line); ns = line; sub(/[^0-9.eE+-].*/, "", ns)
    print name, ns
}' "$1"
}

status=0
for base in BENCH_importance.json BENCH_whatif.json BENCH_neighbor.json BENCH_incremental.json; do
    if [ ! -f "$base" ]; then
        echo "--  $base: no checked-in baseline, skipping (run 'make bench' to record one)"
        continue
    fi
    echo "==> $base"
    extract "$base" > "$fresh/old.txt"
    extract "$fresh/$base" > "$fresh/new.txt"
    if ! awk -v threshold="$threshold" '
NR == FNR { old[$1] = $2; next }
{
    new[$1] = $2
    if (!($1 in old)) { printf "  NEW   %-55s %12.0f ns/op (no baseline)\n", $1, $2; next }
    pct = old[$1] > 0 ? ($2 - old[$1]) / old[$1] * 100 : 0
    verdict = "ok"
    if (pct > threshold) { verdict = "REGRESSION"; failed = 1 }
    printf "  %-5s %-55s %12.0f -> %12.0f ns/op (%+.1f%%)\n", verdict, $1, old[$1], $2, pct
}
END {
    for (name in old) if (!(name in new))
        printf "  GONE  %-55s (baseline has no fresh counterpart)\n", name
    exit failed ? 1 : 0
}' "$fresh/old.txt" "$fresh/new.txt"; then
        status=1
    fi
done

if [ "$status" -ne 0 ]; then
    echo "bench_diff: ns/op regression beyond ${threshold}% — investigate, or refresh baselines with 'make bench' if intentional" >&2
    exit 1
fi
echo "bench_diff: OK (no benchmark regressed more than ${threshold}%)"
