#!/bin/sh
# bench.sh — run the tracked benchmark series with -benchmem and record
# them as JSON (name, ns/op, allocs/op, B/op) so the perf trajectory is
# tracked PR-over-PR. Two series are emitted: the importance/pipeline hot
# paths (BENCH_importance.json) and the what-if fan-out (BENCH_whatif.json).
# `make bench` runs this.
#
# Usage: sh scripts/bench.sh [importance-output.json]
#   NDE_BENCHTIME=2s   benchtime per benchmark (default 1s)
#   NDE_BENCH_FILTER   importance-series benchmark regexp override
set -eu
cd "$(dirname "$0")/.."

out="${1:-BENCH_importance.json}"
filter="${NDE_BENCH_FILTER:-BenchmarkAblation|BenchmarkMCShapleyParallel|BenchmarkKNNShapley|BenchmarkKNNPredictBatch|BenchmarkPipelineRunObs}"
benchtime="${NDE_BENCHTIME:-1s}"

tmp="$(mktemp)"
trap 'rm -f "$tmp"' EXIT

# run_bench FILTER OUTPUT — run one benchmark series and write its JSON
run_bench() {
    echo "==> go test -bench '$1' -benchmem -benchtime $benchtime ."
    go test -run '^$' -bench "$1" -benchmem -benchtime "$benchtime" . | tee "$tmp"

    awk '
BEGIN { print "["; first = 1 }
/^Benchmark/ {
    name = $1
    sub(/-[0-9]+$/, "", name)   # strip the -GOMAXPROCS suffix
    ns = ""; bytes = ""; allocs = ""
    for (i = 2; i < NF; i++) {
        if ($(i+1) == "ns/op")     ns = $i
        if ($(i+1) == "B/op")      bytes = $i
        if ($(i+1) == "allocs/op") allocs = $i
    }
    if (ns == "") next
    if (!first) printf ",\n"
    first = 0
    printf "  {\"name\": \"%s\", \"ns_per_op\": %s", name, ns
    if (bytes != "")  printf ", \"bytes_per_op\": %s", bytes
    if (allocs != "") printf ", \"allocs_per_op\": %s", allocs
    printf "}"
}
END { print "\n]" }
' "$tmp" > "$2"

    echo "==> wrote $2"
}

run_bench "$filter" "$out"
run_bench "^BenchmarkWhatIf$" "BENCH_whatif.json"
