#!/bin/sh
# bench.sh — run the importance/pipeline hot-path benchmarks with -benchmem
# and record them in BENCH_importance.json (name, ns/op, allocs/op, B/op)
# so the perf trajectory is tracked PR-over-PR. `make bench` runs this.
#
# Usage: sh scripts/bench.sh [output.json]
#   NDE_BENCHTIME=2s   benchtime per benchmark (default 1s)
#   NDE_BENCH_FILTER   benchmark regexp (default: the tracked hot paths)
set -eu
cd "$(dirname "$0")/.."

out="${1:-BENCH_importance.json}"
filter="${NDE_BENCH_FILTER:-BenchmarkAblation|BenchmarkMCShapleyParallel|BenchmarkKNNShapley|BenchmarkKNNPredictBatch|BenchmarkPipelineRunObs}"
benchtime="${NDE_BENCHTIME:-1s}"

tmp="$(mktemp)"
trap 'rm -f "$tmp"' EXIT

echo "==> go test -bench '$filter' -benchmem -benchtime $benchtime ."
go test -run '^$' -bench "$filter" -benchmem -benchtime "$benchtime" . | tee "$tmp"

awk '
BEGIN { print "["; first = 1 }
/^Benchmark/ {
    name = $1
    sub(/-[0-9]+$/, "", name)   # strip the -GOMAXPROCS suffix
    ns = ""; bytes = ""; allocs = ""
    for (i = 2; i < NF; i++) {
        if ($(i+1) == "ns/op")     ns = $i
        if ($(i+1) == "B/op")      bytes = $i
        if ($(i+1) == "allocs/op") allocs = $i
    }
    if (ns == "") next
    if (!first) printf ",\n"
    first = 0
    printf "  {\"name\": \"%s\", \"ns_per_op\": %s", name, ns
    if (bytes != "")  printf ", \"bytes_per_op\": %s", bytes
    if (allocs != "") printf ", \"allocs_per_op\": %s", allocs
    printf "}"
}
END { print "\n]" }
' "$tmp" > "$out"

echo "==> wrote $out"
