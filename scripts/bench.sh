#!/bin/sh
# bench.sh — run the tracked benchmark series with -benchmem and record
# them as JSON (name, ns/op, allocs/op, B/op) so the perf trajectory is
# tracked PR-over-PR. Each file carries a "meta" header (git SHA, Go
# version, GOMAXPROCS, UTC date) so numbers from different machines and
# commits stay comparable. Four series are emitted: the importance/pipeline
# hot paths (BENCH_importance.json), the what-if fan-out (BENCH_whatif.json),
# the exact-vs-IVF neighbor-search gate (BENCH_neighbor.json, which also
# records the recall@10 of the IVF run), and the delta-vs-rebuild
# incremental-maintenance gate (BENCH_incremental.json). `make bench` runs
# this.
#
# Usage: sh scripts/bench.sh [importance-output.json]
#   NDE_BENCHTIME=2s   benchtime per benchmark (default 1s)
#   NDE_BENCH_FILTER   importance-series benchmark regexp override
#   NDE_BENCH_OUTDIR   directory for the series files (default repo root;
#                      bench_diff.sh points this at a temp dir)
set -eu
cd "$(dirname "$0")/.."

outdir="${NDE_BENCH_OUTDIR:-.}"
out="${1:-$outdir/BENCH_importance.json}"
filter="${NDE_BENCH_FILTER:-BenchmarkAblation|BenchmarkMCShapleyParallel|BenchmarkKNNShapley|BenchmarkKNNPredictBatch|BenchmarkPipelineRunObs}"
benchtime="${NDE_BENCHTIME:-1s}"

tmp="$(mktemp)"
trap 'rm -f "$tmp"' EXIT

git_sha="$(git rev-parse HEAD 2>/dev/null || echo unknown)"
go_version="$(go version | awk '{print $3}')"
gomaxprocs="${GOMAXPROCS:-$(nproc 2>/dev/null || getconf _NPROCESSORS_ONLN 2>/dev/null || echo 0)}"
run_date="$(date -u +%Y-%m-%dT%H:%M:%SZ)"

# run_bench FILTER OUTPUT — run one benchmark series and write its JSON
run_bench() {
    echo "==> go test -bench '$1' -benchmem -benchtime $benchtime ."
    go test -run '^$' -bench "$1" -benchmem -benchtime "$benchtime" . | tee "$tmp"

    awk -v git_sha="$git_sha" -v go_version="$go_version" \
        -v gomaxprocs="$gomaxprocs" -v run_date="$run_date" '
BEGIN {
    printf "{\n"
    printf "  \"meta\": {\"git_sha\": \"%s\", \"go_version\": \"%s\", \"gomaxprocs\": %s, \"date\": \"%s\"},\n", git_sha, go_version, gomaxprocs, run_date
    print "  \"benchmarks\": ["
    first = 1
}
/^Benchmark/ {
    name = $1
    sub(/-[0-9]+$/, "", name)   # strip the -GOMAXPROCS suffix
    ns = ""; bytes = ""; allocs = ""; recall = ""
    for (i = 2; i < NF; i++) {
        if ($(i+1) == "ns/op")     ns = $i
        if ($(i+1) == "B/op")      bytes = $i
        if ($(i+1) == "allocs/op") allocs = $i
        if ($(i+1) == "recall@10") recall = $i
    }
    if (ns == "") next
    if (!first) printf ",\n"
    first = 0
    printf "    {\"name\": \"%s\", \"ns_per_op\": %s", name, ns
    if (bytes != "")  printf ", \"bytes_per_op\": %s", bytes
    if (allocs != "") printf ", \"allocs_per_op\": %s", allocs
    if (recall != "") printf ", \"recall_at_10\": %s", recall
    printf "}"
}
END { print "\n  ]\n}" }
' "$tmp" > "$2"

    echo "==> wrote $2"
}

run_bench "$filter" "$out"
run_bench "^BenchmarkWhatIf$" "$outdir/BENCH_whatif.json"
run_bench "^BenchmarkNeighborTopK$" "$outdir/BENCH_neighbor.json"
run_bench "^BenchmarkIncremental$" "$outdir/BENCH_incremental.json"
