// Package nde is a Go implementation of the data-debugging toolkit from the
// SIGMOD 2025 tutorial "Navigating Data Errors in Machine Learning
// Pipelines: Identify, Debug, and Learn" (Karlaš, Salimi, Schelter).
//
// The library covers the tutorial's three pillars:
//
//  1. Identify — data-importance methods that rank training examples by
//     their contribution to downstream model quality: leave-one-out,
//     Monte-Carlo and exact Shapley values, the closed-form kNN-Shapley,
//     Banzhaf and Beta-Shapley semivalues, influence functions, and
//     uncertainty-based label-noise scores (internal/importance).
//
//  2. Debug — provenance-tracked preprocessing pipelines (joins, filters,
//     UDF columns, feature encoders) whose outputs carry provenance
//     polynomials back to source tuples, enabling Datascope-style importance
//     over pipelines, mlinspect-style distribution inspections, and
//     ArgusEyes-style screening for leakage and label issues
//     (internal/pipeline, internal/prov).
//
//  3. Learn — reasoning under unresolved errors: Zorro-style uncertainty
//     propagation with prediction ranges and worst-case loss bounds,
//     CPClean certain predictions for kNN over incomplete data, certain-
//     model checks for linear models, and possible-world enumeration
//     (internal/uncertain).
//
// This package is the convenience facade: it regenerates the tutorial's
// hands-on hiring scenario (recommendation letters with side tables),
// mirrors the notebook-level API of Figures 2–4, and re-exports the core
// types. Power users can import the internal packages' counterparts
// directly through the aliases defined here.
package nde
