package nde

import (
	"fmt"
	"math/rand"
	"time"

	"nde/internal/datagen"
	"nde/internal/encode"
	"nde/internal/frame"
	"nde/internal/importance"
	"nde/internal/ml"
	"nde/internal/nderr"
	"nde/internal/pipeline"
	"nde/internal/uncertain"
)

// Re-exported core types, so downstream code can use the facade without
// importing internal packages directly.
type (
	// Frame is a typed, null-aware columnar table.
	Frame = frame.Frame
	// Series is one named column of a Frame.
	Series = frame.Series
	// Value is a dynamically typed cell.
	Value = frame.Value
	// Dataset is a feature matrix with labels (and optional groups).
	Dataset = ml.Dataset
	// Classifier is any trainable model.
	Classifier = ml.Classifier
	// Scores holds one importance value per training example.
	Scores = importance.Scores
	// Pipeline is a provenance-tracked preprocessing DAG.
	Pipeline = pipeline.Pipeline
	// Node is one pipeline operator.
	Node = pipeline.Node
	// Featurized is a pipeline output with provenance.
	Featurized = pipeline.Featurized
	// SymbolicDataset has interval-valued (uncertain) feature cells.
	SymbolicDataset = uncertain.SymbolicDataset
	// Interval is a closed real interval.
	Interval = uncertain.Interval
	// HiringData bundles the synthetic scenario tables.
	HiringData = datagen.HiringData
)

// HiringScenario is the hands-on dataset: the generated tables plus a
// deterministic train/valid/test split of the letters table.
type HiringScenario struct {
	Data  *datagen.HiringData
	Train *Frame
	Valid *Frame
	Test  *Frame
}

// LoadRecommendationLetters regenerates the tutorial's synthetic hiring
// scenario and splits the letters 60/20/20 — the Go analogue of
// nde.load_recommendation_letters(). n <= 0 falls back to the default 300.
func LoadRecommendationLetters(n int, seed int64) *HiringScenario {
	if n <= 0 {
		n = 300
	}
	h := datagen.Hiring(datagen.Config{N: n, Seed: seed})
	s, err := ScenarioFromData(h, seed)
	if err != nil {
		// The generator always emits a well-formed letters table of n rows;
		// a split failure here is a programmer bug, not a data error.
		panic(err)
	}
	return s
}

// ScenarioFromData splits an externally loaded scenario (for example one
// read back from CSV files via datagen.LoadHiringCSV) into the standard
// deterministic 60/20/20 letters split. Unlike LoadRecommendationLetters,
// the tables come from the outside world, so degenerate ones (nil or empty
// letters) are reported as errors.
func ScenarioFromData(h *HiringData, seed int64) (_ *HiringScenario, err error) {
	rows := 0
	if h != nil {
		rows = frameRows(h.Letters)
	}
	defer recordOp("ScenarioFromData", time.Now(), rows, 0, &err)
	if h == nil {
		return nil, nderr.Empty("nde: scenario data is nil")
	}
	if err := checkFrame("letters", h.Letters); err != nil {
		return nil, err
	}
	n := h.Letters.NumRows()
	perm := rand.New(rand.NewSource(seed + 1)).Perm(n)
	nTrain := n * 6 / 10
	nValid := n * 2 / 10
	return &HiringScenario{
		Data:  h,
		Train: h.Letters.Take(perm[:nTrain]),
		Valid: h.Letters.Take(perm[nTrain : nTrain+nValid]),
		Test:  h.Letters.Take(perm[nTrain+nValid:]),
	}, nil
}

// LetterFeaturizer returns the default encoder for letters frames: a
// 64-bucket hashing bag-of-words of the letter text plus the standardized
// employer rating.
func LetterFeaturizer() *encode.ColumnTransformer {
	return encode.NewColumnTransformer(
		encode.ColumnSpec{Column: "letter_text", Encoder: encode.NewHashingVectorizer(64)},
		encode.ColumnSpec{
			Column:  "employer_rating",
			Imputer: encode.NewImputer(encode.ImputeMean),
			Encoder: encode.NewStandardScaler(),
		},
	)
}

// FeaturizeLetters encodes a letters frame into a model-ready dataset with
// sentiment labels (negative=0, positive=1). The featurizer is fitted on
// the given frame; to featurize several splits consistently use
// FeaturizeLetterSplits.
func FeaturizeLetters(f *Frame) (_ *Dataset, err error) {
	defer recordOp("FeaturizeLetters", time.Now(), frameRows(f), 0, &err)
	if err := checkFrame("letters", f, "letter_text", "employer_rating", "sentiment"); err != nil {
		return nil, err
	}
	return featurizeWith(LetterFeaturizer(), f, true)
}

// FeaturizeLetterSplits fits the default featurizer on train and applies it
// to all three splits, the leakage-free protocol.
func FeaturizeLetterSplits(train, valid, test *Frame) (dTrain, dValid, dTest *Dataset, err error) {
	defer recordOp("FeaturizeLetterSplits", time.Now(), frameRows(train), 0, &err)
	for _, s := range []struct {
		what string
		f    *Frame
	}{{"train", train}, {"valid", valid}, {"test", test}} {
		if err := checkFrame(s.what+" letters", s.f, "letter_text", "employer_rating", "sentiment"); err != nil {
			return nil, nil, nil, err
		}
	}
	ct := LetterFeaturizer()
	if dTrain, err = featurizeWith(ct, train, true); err != nil {
		return nil, nil, nil, err
	}
	if dValid, err = featurizeWith(ct, valid, false); err != nil {
		return nil, nil, nil, err
	}
	if dTest, err = featurizeWith(ct, test, false); err != nil {
		return nil, nil, nil, err
	}
	return dTrain, dValid, dTest, nil
}

func featurizeWith(ct *encode.ColumnTransformer, f *Frame, fit bool) (*Dataset, error) {
	var err error
	if fit {
		err = ct.Fit(f)
		if err != nil {
			return nil, err
		}
	}
	x, err := ct.Transform(f)
	if err != nil {
		return nil, err
	}
	labels, err := f.Column("sentiment")
	if err != nil {
		return nil, err
	}
	y := make([]int, labels.Len())
	for i := range y {
		if labels.IsNull(i) {
			// Wrap the family root so nde.ErrorClass classifies a null
			// label as degenerate input instead of an opaque "error".
			return nil, fmt.Errorf("nde: null sentiment at row %d: %w", i, nderr.ErrDegenerateInput)
		}
		if labels.Str(i) == "positive" {
			y[i] = 1
		}
	}
	return ml.NewDataset(x, y)
}

// DefaultModel returns the classifier used by the facade's evaluation
// helpers: a 5-nearest-neighbor vote, the tutorial's proxy model of choice.
func DefaultModel() Classifier { return ml.NewKNN(5) }

// EvaluateModel featurizes train and test letters (fitting the encoder on
// train), trains the default model, and returns test accuracy — the Go
// analogue of nde.evaluate_model(train_df).
func EvaluateModel(train, test *Frame) (_ float64, err error) {
	defer recordOp("EvaluateModel", time.Now(), frameRows(train), 0, &err)
	if err := checkFrame("train letters", train, "letter_text", "employer_rating", "sentiment"); err != nil {
		return 0, err
	}
	if err := checkFrame("test letters", test, "letter_text", "employer_rating", "sentiment"); err != nil {
		return 0, err
	}
	ct := LetterFeaturizer()
	dTrain, err := featurizeWith(ct, train, true)
	if err != nil {
		return 0, err
	}
	dTest, err := featurizeWith(ct, test, false)
	if err != nil {
		return 0, err
	}
	return ml.EvaluateAccuracy(DefaultModel(), dTrain, dTest)
}

// InjectLabelErrors flips the sentiment labels of a random fraction of
// letters and reports which rows were corrupted — the Go analogue of
// nde.inject_labelerrors(train_df, fraction=0.1).
func InjectLabelErrors(f *Frame, fraction float64, seed int64) (_ *Frame, _ map[int]bool, err error) {
	defer recordOp("InjectLabelErrors", time.Now(), frameRows(f), 0, &err)
	if err := checkFrame("letters", f, "sentiment"); err != nil {
		return nil, nil, err
	}
	return datagen.InjectLabelErrors(f, "sentiment", fraction, seed)
}

// KNNShapleyValues featurizes the letters splits and computes exact
// kNN-Shapley importance of every training letter against the validation
// split — the Go analogue of nde.knn_shapley_values(train_df_err,
// validation=valid_df). k <= 0 falls back to the default 5; k larger than
// the training-set size is rejected with ErrBadK.
func KNNShapleyValues(train, valid *Frame, k int) (_ Scores, err error) {
	cache := ""
	defer recordOpCache("KNNShapleyValues", time.Now(), frameRows(train), &cache, &err)
	outcome := indexCacheOutcome()
	defer func() { cache = outcome() }()
	if err := checkFrame("train letters", train, "letter_text", "employer_rating", "sentiment"); err != nil {
		return nil, err
	}
	if err := checkFrame("valid letters", valid, "letter_text", "employer_rating", "sentiment"); err != nil {
		return nil, err
	}
	ct := LetterFeaturizer()
	dTrain, err := featurizeWith(ct, train, true)
	if err != nil {
		return nil, err
	}
	dValid, err := featurizeWith(ct, valid, false)
	if err != nil {
		return nil, err
	}
	if k <= 0 {
		k = 5
	}
	if err := checkK("kNN-Shapley", k, dTrain.Len()); err != nil {
		return nil, err
	}
	if err := checkTrainable("train letters", dTrain); err != nil {
		return nil, err
	}
	return importance.KNNShapley(k, dTrain, dValid)
}

// PrettyPrint renders the given rows of a frame as an aligned table — the
// Go analogue of nde.pretty_print(train_df_err[lowest]). Out-of-range row
// indices are reported as an error rather than panicking.
func PrettyPrint(f *Frame, rows []int) (_ string, err error) {
	defer recordOp("PrettyPrint", time.Now(), len(rows), 0, &err)
	if f == nil {
		return "", nderr.Empty("nde: frame is nil")
	}
	if err := checkRows("PrettyPrint", rows, f.NumRows()); err != nil {
		return "", err
	}
	return f.Take(rows).Render(0), nil
}

// PrettyPrintWithScores renders the given rows with an extra "importance"
// column — the exact display of the tutorial's Figure 2, where the
// suspicious letters appear next to their importance values.
func PrettyPrintWithScores(f *Frame, rows []int, scores Scores) (_ string, err error) {
	defer recordOp("PrettyPrintWithScores", time.Now(), len(rows), 0, &err)
	if f == nil {
		return "", nderr.Empty("nde: frame is nil")
	}
	if len(scores) != f.NumRows() {
		return "", fmt.Errorf("nde: %d scores for %d rows: %w", len(scores), f.NumRows(), nderr.ErrShapeMismatch)
	}
	if err := checkRows("PrettyPrintWithScores", rows, f.NumRows()); err != nil {
		return "", err
	}
	sub := f.Take(rows)
	vals := make([]float64, len(rows))
	for o, i := range rows {
		vals[o] = scores[i]
	}
	out, err := sub.WithColumn(frame.NewFloatSeries("importance", vals, nil))
	if err != nil {
		return "", err
	}
	return out.Render(0), nil
}
