package nde

import (
	"fmt"
	"time"

	"nde/internal/encode"
	"nde/internal/frame"
	"nde/internal/importance"
	"nde/internal/ml"
	"nde/internal/nderr"
	"nde/internal/pipeline"
)

// HiringPipeline is the Figure-3 preprocessing pipeline built over the
// scenario tables: join letters with job details and social data, filter to
// the healthcare sector, derive has_twitter, and encode features.
type HiringPipeline struct {
	Pipeline *Pipeline
	Output   *Node
	// TrainRows is the number of rows of the letters source table, the
	// candidate set for source-tuple debugging.
	TrainRows int
	// Encoder is the column transformer fitted by WithProvenance; use it
	// to featurize validation data consistently.
	Encoder *encode.ColumnTransformer
}

// BuildHiringPipeline constructs the pipeline over a letters frame and the
// scenario side tables — the Go analogue of the def pipeline(train_df,
// jobdetail_df, social_df) snippet of Figure 3. The three frames are
// validated up front (non-nil, non-empty, join and projection columns
// present), so malformed inputs fail here with a wrapped error instead of
// somewhere inside the join operators.
func BuildHiringPipeline(letters *Frame, jobs, social *Frame) (_ *HiringPipeline, err error) {
	defer recordOp("BuildHiringPipeline", time.Now(), frameRows(letters), 0, &err)
	if err := checkFrame("letters", letters, "job_id", "person_id", "letter_text", "employer_rating", "sentiment"); err != nil {
		return nil, err
	}
	if err := checkFrame("jobs", jobs, "job_id", "sector"); err != nil {
		return nil, err
	}
	if err := checkFrame("social", social, "person_id", "twitter"); err != nil {
		return nil, err
	}
	p := pipeline.New()
	tr := p.Source("train", letters)
	jo := p.Source("jobs", jobs)
	so := p.Source("social", social)
	joined := p.Join(tr, jo, "job_id", frame.InnerJoin)
	joined = p.Join(joined, so, "person_id", frame.LeftJoin)
	filtered := p.Filter(joined, `sector == "healthcare"`, func(r frame.Row) bool {
		return !r.IsNull("sector") && r.Str("sector") == "healthcare"
	})
	withTwitter := p.MapCol(filtered, "has_twitter", frame.KindBool, func(r frame.Row) (frame.Value, error) {
		return frame.Bool(!r.IsNull("twitter")), nil
	})
	out := p.Project(withTwitter, "person_id", "letter_text", "employer_rating", "has_twitter", "sentiment")
	return &HiringPipeline{Pipeline: p, Output: out, TrainRows: letters.NumRows()}, nil
}

// ShowQueryPlan renders the pipeline's operator tree — the Go analogue of
// nde.show_query_plan(pipeline).
func (h *HiringPipeline) ShowQueryPlan() string { return h.Pipeline.RenderPlan(h.Output) }

// PipelineFeaturizer returns the encoder applied to the pipeline output:
// hashed letter text, standardized employer rating, one-hot has_twitter.
func PipelineFeaturizer() *encode.ColumnTransformer {
	return encode.NewColumnTransformer(
		encode.ColumnSpec{Column: "letter_text", Encoder: encode.NewHashingVectorizer(64)},
		encode.ColumnSpec{
			Column:  "employer_rating",
			Imputer: encode.NewImputer(encode.ImputeMean),
			Encoder: encode.NewStandardScaler(),
		},
		encode.ColumnSpec{Column: "has_twitter", Encoder: encode.NewOneHotEncoder()},
	)
}

// WithProvenance runs the pipeline and featurizes its output while keeping
// per-row provenance — the Go analogue of nde.with_provenance(pipeline(...)).
// The fitted encoder is stored on the receiver for consistent validation
// featurization.
func (h *HiringPipeline) WithProvenance() (_ *Featurized, err error) {
	defer recordOp("WithProvenance", time.Now(), h.TrainRows, 0, &err)
	res, err := h.Pipeline.Run(h.Output)
	if err != nil {
		return nil, err
	}
	ct := PipelineFeaturizer()
	ft, err := pipeline.Featurize(res, ct, "sentiment", "")
	if err != nil {
		return nil, err
	}
	h.Encoder = ct
	return ft, nil
}

// DatascopeScores computes source-tuple importance for the letters table of
// the pipeline via kNN-Shapley pushed through provenance — the Go analogue
// of nde.datascope(for=train_df_err, provenance=prov, validation=valid_df).
// valid must live in the same feature space as ft.Data; use
// FeaturizeValidationLike to build it.
func (h *HiringPipeline) DatascopeScores(ft *Featurized, valid *Dataset, k int) (_ Scores, err error) {
	cache := ""
	defer recordOpCache("DatascopeScores", time.Now(), h.TrainRows, &cache, &err)
	outcome := indexCacheOutcome()
	defer func() { cache = outcome() }()
	if ft == nil || ft.Data == nil {
		return nil, nderr.Empty("nde: featurized pipeline output is nil")
	}
	if err := checkPair("pipeline output", ft.Data, "valid", valid); err != nil {
		return nil, err
	}
	return importance.Datascope(ft, valid, "train", h.TrainRows, importance.DatascopeConfig{K: k})
}

// GroupShapleyScores computes exact Shapley values over the pipeline's
// provenance groups (fork-pipeline semantics; falls back to Monte Carlo
// beyond 20 groups) — the exact counterpart of DatascopeScores' additive
// aggregation.
func (h *HiringPipeline) GroupShapleyScores(ft *Featurized, valid *Dataset, k int) (_ Scores, err error) {
	defer recordOp("GroupShapleyScores", time.Now(), h.TrainRows, 0, &err)
	if ft == nil || ft.Data == nil {
		return nil, nderr.Empty("nde: featurized pipeline output is nil")
	}
	if err := checkPair("pipeline output", ft.Data, "valid", valid); err != nil {
		return nil, err
	}
	return importance.GroupShapley(ft, valid, "train", h.TrainRows, k, 50, 1)
}

// FeaturizeValidationLike pushes a validation letters frame through a copy
// of the pipeline structure (joins and derived columns, without the sector
// filter so all rows survive) and encodes it with the same fitted encoders
// used for ft. The resulting dataset is comparable with ft.Data.
func (h *HiringPipeline) FeaturizeValidationLike(valid *Frame, jobs, social *Frame, ct *encode.ColumnTransformer) (_ *Dataset, err error) {
	defer recordOp("FeaturizeValidationLike", time.Now(), frameRows(valid), 0, &err)
	if err := checkFrame("valid letters", valid, "job_id", "person_id", "letter_text", "employer_rating", "sentiment"); err != nil {
		return nil, err
	}
	if err := checkFrame("jobs", jobs, "job_id"); err != nil {
		return nil, err
	}
	if err := checkFrame("social", social, "person_id", "twitter"); err != nil {
		return nil, err
	}
	if ct == nil {
		return nil, nderr.Empty("nde: column transformer is nil (run WithProvenance first)")
	}
	p := pipeline.New()
	tr := p.Source("valid", valid)
	jo := p.Source("jobs", jobs)
	so := p.Source("social", social)
	joined := p.Join(tr, jo, "job_id", frame.InnerJoin)
	joined = p.Join(joined, so, "person_id", frame.LeftJoin)
	withTwitter := p.MapCol(joined, "has_twitter", frame.KindBool, func(r frame.Row) (frame.Value, error) {
		return frame.Bool(!r.IsNull("twitter")), nil
	})
	out := p.Project(withTwitter, "person_id", "letter_text", "employer_rating", "has_twitter", "sentiment")
	res, err := p.Run(out)
	if err != nil {
		return nil, err
	}
	x, err := ct.Transform(res.Frame)
	if err != nil {
		return nil, err
	}
	labels, err := res.Frame.Column("sentiment")
	if err != nil {
		return nil, err
	}
	y := make([]int, labels.Len())
	for i := range y {
		if labels.IsNull(i) {
			return nil, fmt.Errorf("nde: null sentiment at validation row %d: %w", i, nderr.ErrDegenerateInput)
		}
		if labels.Str(i) == "positive" {
			y[i] = 1
		}
	}
	return ml.NewDataset(x, y)
}

// RemoveAndEvaluate retrains the default model on the pipeline output with
// the given output rows removed and returns the accuracy change relative to
// training on all rows (negative = removal hurt) — the Go analogue of the
// nde.evaluate_change(X_train, X_train_clean) snippet.
func RemoveAndEvaluate(ft *Featurized, remove []int, valid *Dataset) (before, after float64, err error) {
	defer recordOp("RemoveAndEvaluate", time.Now(), len(remove), 0, &err)
	if ft == nil || ft.Data == nil {
		return 0, 0, nderr.Empty("nde: featurized pipeline output is nil")
	}
	if err := checkPair("pipeline output", ft.Data, "valid", valid); err != nil {
		return 0, 0, err
	}
	if err := checkRows("RemoveAndEvaluate", remove, ft.Data.Len()); err != nil {
		return 0, 0, err
	}
	before, err = ml.EvaluateAccuracy(DefaultModel(), ft.Data, valid)
	if err != nil {
		return 0, 0, err
	}
	rm := make(map[int]bool, len(remove))
	for _, i := range remove {
		rm[i] = true
	}
	rest, _ := ft.Data.Without(rm)
	after, err = ml.EvaluateAccuracy(DefaultModel(), rest, valid)
	if err != nil {
		return 0, 0, err
	}
	return before, after, nil
}
