package nde_test

// Fault-injection suite: every exported facade entry point is swept with
// corrupted inputs — NaN/Inf feature columns, nil and zero-row tables,
// single-class label sets, shape mismatches, out-of-range k — and must
// return an error in the ErrDegenerateInput family without panicking.
// A final test pins the clean baseline: corrupting copies must not
// perturb results on the original data, bit for bit.

import (
	"errors"
	"math"
	"testing"

	"nde"
	"nde/internal/frame"
	"nde/internal/linalg"
	"nde/internal/ml"
	"nde/internal/testutil"
)

type faultCase struct {
	name string
	call func() error
}

// mustDegenerate runs each case and requires an ErrDegenerateInput-family
// error; a panic anywhere is a test failure, not a crash.
func mustDegenerate(t *testing.T, cases []faultCase) {
	t.Helper()
	for _, c := range cases {
		c := c
		t.Run(c.name, func(t *testing.T) {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("panicked: %v", r)
				}
			}()
			err := c.call()
			if err == nil {
				t.Fatal("expected an error, got nil")
			}
			if !errors.Is(err, nde.ErrDegenerateInput) {
				t.Errorf("error outside the ErrDegenerateInput family: %v", err)
			}
		})
	}
}

func TestFaultInjectionLetterFrames(t *testing.T) {
	s := nde.LoadRecommendationLetters(150, 42)
	nanF, err := testutil.PoisonColumn(s.Train, "employer_rating", math.NaN())
	if err != nil {
		t.Fatal(err)
	}
	infF, err := testutil.PoisonColumn(s.Train, "employer_rating", math.Inf(1))
	if err != nil {
		t.Fatal(err)
	}
	emptyF := testutil.EmptyLike(s.Train)

	for _, corrupt := range []struct {
		class string
		f     *nde.Frame
	}{
		{"nil-frame", nil},
		{"empty-frame", emptyF},
		{"nan-features", nanF},
		{"inf-features", infF},
	} {
		corrupt := corrupt
		t.Run(corrupt.class, func(t *testing.T) {
			cases := []faultCase{
				{"FeaturizeLetters", func() error {
					_, err := nde.FeaturizeLetters(corrupt.f)
					return err
				}},
				{"FeaturizeLetterSplits/train", func() error {
					_, _, _, err := nde.FeaturizeLetterSplits(corrupt.f, s.Valid, s.Test)
					return err
				}},
				{"FeaturizeLetterSplits/valid", func() error {
					_, _, _, err := nde.FeaturizeLetterSplits(s.Train, corrupt.f, s.Test)
					return err
				}},
				{"EvaluateModel/train", func() error {
					_, err := nde.EvaluateModel(corrupt.f, s.Test)
					return err
				}},
				{"EvaluateModel/test", func() error {
					_, err := nde.EvaluateModel(s.Train, corrupt.f)
					return err
				}},
				{"KNNShapleyValues/train", func() error {
					_, err := nde.KNNShapleyValues(corrupt.f, s.Valid, 5)
					return err
				}},
				{"KNNShapleyValues/valid", func() error {
					_, err := nde.KNNShapleyValues(s.Train, corrupt.f, 5)
					return err
				}},
				{"BuildHiringPipeline+WithProvenance", func() error {
					// NaN letters legally pass construction (only columns
					// are checked there); the poison must surface at
					// featurization instead.
					hp, err := nde.BuildHiringPipeline(corrupt.f, s.Data.Jobs, s.Data.Social)
					if err != nil {
						return err
					}
					_, err = hp.WithProvenance()
					return err
				}},
			}
			if corrupt.class == "nil-frame" || corrupt.class == "empty-frame" {
				cases = append(cases,
					faultCase{"InjectLabelErrors", func() error {
						_, _, err := nde.InjectLabelErrors(corrupt.f, 0.1, 1)
						return err
					}},
					faultCase{"ScreenTrainTestLeakage", func() error {
						_, err := nde.ScreenTrainTestLeakage(corrupt.f, s.Test)
						return err
					}},
					faultCase{"PrettyPrint", func() error {
						_, err := nde.PrettyPrint(corrupt.f, []int{0})
						return err
					}},
				)
			}
			mustDegenerate(t, cases)
		})
	}
}

func TestFaultInjectionDatasets(t *testing.T) {
	s := nde.LoadRecommendationLetters(150, 42)
	dTrain, dValid, dTest, err := nde.FeaturizeLetterSplits(s.Train, s.Valid, s.Test)
	if err != nil {
		t.Fatal(err)
	}
	truth := append([]int(nil), dTrain.Y...)
	attrVals := make([]string, dTrain.Len())
	for i := range attrVals {
		attrVals[i] = []string{"a", "b"}[i%2]
	}
	attrs := frame.MustNew(frame.NewStringSeries("grp", attrVals, nil))
	sym, _, err := nde.EncodeSymbolic(dTrain, 0, 0.2, nde.MNAR, 3)
	if err != nil {
		t.Fatal(err)
	}

	nanDS := testutil.PoisonDataset(dTrain, 3, 1, math.NaN())
	infDS := testutil.PoisonDataset(dTrain, 3, 1, math.Inf(-1))
	oneDS := testutil.SingleClassDataset(dTrain)
	emptyDS := dTrain.Subset(nil)

	for _, corrupt := range []struct {
		class string
		d     *nde.Dataset
	}{
		{"nil-dataset", nil},
		{"zero-row-dataset", emptyDS},
		{"nan-cell", nanDS},
		{"inf-cell", infDS},
		{"single-class-labels", oneDS},
	} {
		corrupt := corrupt
		trainSide := []faultCase{
			{"SelfConfidenceScores", func() error {
				_, err := nde.SelfConfidenceScores(corrupt.d, 1)
				return err
			}},
			{"MarginScores", func() error {
				_, err := nde.MarginScores(corrupt.d, 1)
				return err
			}},
			{"InfluenceScores/train", func() error {
				_, err := nde.InfluenceScores(corrupt.d, dValid)
				return err
			}},
			{"DataShapleyScores", func() error {
				_, err := nde.DataShapleyScores(corrupt.d, dValid, 4, 1)
				return err
			}},
			{"IterativeCleaning", func() error {
				_, err := nde.IterativeCleaning(corrupt.d, dValid, dTest, truth, 5, 10)
				return err
			}},
			{"FairnessExplanations", func() error {
				_, _, err := nde.FairnessExplanations(corrupt.d, attrs, dValid, 3)
				return err
			}},
		}
		// Entry points that only need a well-formed dataset, not a
		// trainable one: a single-class set is legal there by design
		// (dirty data may collapse to one label), so it is only swept
		// through the trainable-side cases above.
		pairSide := []faultCase{
			{"InfluenceScores/valid", func() error {
				_, err := nde.InfluenceScores(dTrain, corrupt.d)
				return err
			}},
			{"EncodeSymbolic", func() error {
				_, _, err := nde.EncodeSymbolic(corrupt.d, 0, 0.2, nde.MNAR, 3)
				return err
			}},
			{"NewDebuggingChallenge", func() error {
				_, err := nde.NewDebuggingChallenge(corrupt.d, truth, dValid, dTest, 10)
				return err
			}},
			{"ZorroAnalysis/test", func() error {
				_, err := nde.ZorroAnalysis(sym, corrupt.d, 3, 1)
				return err
			}},
			{"CertainPredictionFraction/test", func() error {
				_, _, err := nde.CertainPredictionFraction(sym, corrupt.d, 3)
				return err
			}},
			{"PossibleWorlds/base", func() error {
				_, err := nde.PossibleWorlds(corrupt.d, nil, dTest, 4)
				return err
			}},
		}
		t.Run(corrupt.class, func(t *testing.T) {
			mustDegenerate(t, trainSide)
			if corrupt.class != "single-class-labels" {
				mustDegenerate(t, pairSide)
			}
		})
	}

	t.Run("single-class-dirty-challenge-is-legal", func(t *testing.T) {
		// A dirty training set is allowed to be single-class: the whole
		// point of the challenge is that cleaning restores the labels.
		if _, err := nde.NewDebuggingChallenge(oneDS, truth, dValid, dTest, 10); err != nil {
			t.Fatalf("single-class dirty set should be accepted: %v", err)
		}
	})
}

func TestFaultInjectionShapeAndK(t *testing.T) {
	s := nde.LoadRecommendationLetters(150, 42)
	dTrain, dValid, dTest, err := nde.FeaturizeLetterSplits(s.Train, s.Valid, s.Test)
	if err != nil {
		t.Fatal(err)
	}
	truth := append([]int(nil), dTrain.Y...)
	sym, _, err := nde.EncodeSymbolic(dTrain, 0, 0.2, nde.MNAR, 3)
	if err != nil {
		t.Fatal(err)
	}
	wideY := make([]int, dValid.Len())
	for i := range wideY {
		wideY[i] = i % 2
	}
	wide, err := ml.NewDataset(linalg.NewMatrix(dValid.Len(), dTrain.Dim()+1), wideY)
	if err != nil {
		t.Fatal(err)
	}

	for _, c := range []faultCase{
		{"KNNShapleyValues/k>n", func() error {
			_, err := nde.KNNShapleyValues(s.Train, s.Valid, 100000)
			return err
		}},
		{"CertainPredictionFraction/k>n", func() error {
			_, _, err := nde.CertainPredictionFraction(sym, dTest, 100000)
			return err
		}},
	} {
		c := c
		t.Run(c.name, func(t *testing.T) {
			if err := c.call(); !errors.Is(err, nde.ErrBadK) {
				t.Fatalf("want ErrBadK, got %v", err)
			}
		})
	}

	for _, c := range []faultCase{
		{"InfluenceScores/dim-mismatch", func() error {
			_, err := nde.InfluenceScores(dTrain, wide)
			return err
		}},
		{"DataShapleyScores/dim-mismatch", func() error {
			_, err := nde.DataShapleyScores(dTrain, wide, 4, 1)
			return err
		}},
		{"IterativeCleaning/short-truth", func() error {
			_, err := nde.IterativeCleaning(dTrain, dValid, dTest, truth[:5], 5, 10)
			return err
		}},
		{"PrettyPrintWithScores/short-scores", func() error {
			_, err := nde.PrettyPrintWithScores(s.Train, []int{0}, make(nde.Scores, 3))
			return err
		}},
	} {
		c := c
		t.Run(c.name, func(t *testing.T) {
			if err := c.call(); !errors.Is(err, nde.ErrShapeMismatch) {
				t.Fatalf("want ErrShapeMismatch, got %v", err)
			}
		})
	}

	t.Run("single-class-is-ErrSingleClass", func(t *testing.T) {
		if _, err := nde.SelfConfidenceScores(testutil.SingleClassDataset(dTrain), 1); !errors.Is(err, nde.ErrSingleClass) {
			t.Fatalf("want ErrSingleClass, got %v", err)
		}
	})
	t.Run("nan-is-ErrNonFinite", func(t *testing.T) {
		if _, err := nde.MarginScores(testutil.PoisonDataset(dTrain, 0, 0, math.NaN()), 1); !errors.Is(err, nde.ErrNonFinite) {
			t.Fatalf("want ErrNonFinite, got %v", err)
		}
	})
}

func TestFaultInjectionPipelineEntryPoints(t *testing.T) {
	s := nde.LoadRecommendationLetters(150, 42)
	hp, err := nde.BuildHiringPipeline(s.Train, s.Data.Jobs, s.Data.Social)
	if err != nil {
		t.Fatal(err)
	}
	ft, err := hp.WithProvenance()
	if err != nil {
		t.Fatal(err)
	}
	likeY := make([]int, 6)
	for i := range likeY {
		likeY[i] = i % 2
	}
	validLike, err := ml.NewDataset(linalg.NewMatrix(6, ft.Data.Dim()), likeY)
	if err != nil {
		t.Fatal(err)
	}

	mustDegenerate(t, []faultCase{
		{"WhatIf/nil-featurized", func() error {
			_, err := nde.WhatIf(nil, nil, validLike)
			return err
		}},
		{"DatascopeScores/nil-featurized", func() error {
			_, err := hp.DatascopeScores(nil, validLike, 1)
			return err
		}},
		{"GroupShapleyScores/nil-featurized", func() error {
			_, err := hp.GroupShapleyScores(nil, validLike, 1)
			return err
		}},
		{"RemoveAndEvaluate/bad-row", func() error {
			_, _, err := nde.RemoveAndEvaluate(ft, []int{-3}, validLike)
			return err
		}},
		{"RemoveAndEvaluate/nil-valid", func() error {
			_, _, err := nde.RemoveAndEvaluate(ft, []int{0}, nil)
			return err
		}},
	})
}

// TestCleanBaselineSurvivesFaultSweep pins the bugfix contract: corrupting
// copies of the data must leave results on the original inputs bit-for-bit
// identical, and repeated clean runs are deterministic.
func TestCleanBaselineSurvivesFaultSweep(t *testing.T) {
	s := nde.LoadRecommendationLetters(150, 42)
	accBefore, err := nde.EvaluateModel(s.Train, s.Test)
	if err != nil {
		t.Fatal(err)
	}
	scoresBefore, err := nde.KNNShapleyValues(s.Train, s.Valid, 5)
	if err != nil {
		t.Fatal(err)
	}

	nanF, err := testutil.PoisonColumn(s.Train, "employer_rating", math.NaN())
	if err != nil {
		t.Fatal(err)
	}
	_, _ = nde.FeaturizeLetters(nanF)
	_, _ = nde.KNNShapleyValues(nanF, s.Valid, 5)
	_, _ = nde.EvaluateModel(nanF, s.Test)
	_, _ = nde.FeaturizeLetters(testutil.EmptyLike(s.Train))

	accAfter, err := nde.EvaluateModel(s.Train, s.Test)
	if err != nil {
		t.Fatal(err)
	}
	if accAfter != accBefore {
		t.Errorf("clean accuracy changed after fault sweep: %v -> %v", accBefore, accAfter)
	}
	scoresAfter, err := nde.KNNShapleyValues(s.Train, s.Valid, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(scoresAfter) != len(scoresBefore) {
		t.Fatalf("score length changed: %d -> %d", len(scoresBefore), len(scoresAfter))
	}
	for i := range scoresBefore {
		if scoresBefore[i] != scoresAfter[i] {
			t.Fatalf("score %d changed after fault sweep: %v -> %v", i, scoresBefore[i], scoresAfter[i])
		}
	}
}
