package nde_test

// stress_test.go — the race-stress gate: hammer the facade's concurrent
// entry points (kNN-Shapley scoring, what-if removal batches, iterative
// cleaning) from many goroutines over several distinct datasets, under the
// race detector, and assert that every concurrent result is bit-for-bit
// identical to a serial baseline. A cache-churn goroutine resets the shared
// neighbor-index cache throughout, so the singleflight build/evict/reset
// paths are exercised at the same time.
//
// The default scale is small enough for `go test -race ./...`; set
// NDE_STRESS=1 (as `make stress` does) for the heavier sweep.

import (
	"fmt"
	"math"
	"os"
	"sync"
	"testing"
	"time"

	"nde"
	"nde/internal/datagen"
)

// stressScale returns (datasets, goroutines, iterations per goroutine).
func stressScale() (int, int, int) {
	if os.Getenv("NDE_STRESS") == "1" {
		return 4, 8, 3
	}
	return 2, 4, 2
}

// stressFixture is one dataset's inputs plus serial baselines for every
// entry point under stress.
type stressFixture struct {
	id int

	trainFrame, validFrame *nde.Frame

	dirty, valid, test *nde.Dataset
	truth              []int

	ft        *nde.Featurized
	validLike *nde.Dataset
	variants  []nde.RemovalVariant

	baseShapley  nde.Scores
	baseWhatIf   []nde.WhatIfResult
	baseCleaning *nde.CleaningResult
}

func newStressFixture(t *testing.T, id int) *stressFixture {
	t.Helper()
	fx := &stressFixture{id: id}
	n := 110 + 10*id
	seed := int64(100 + id)
	s := nde.LoadRecommendationLetters(n, seed)
	fx.trainFrame, fx.validFrame = s.Train, s.Valid

	dTrain, dValid, dTest, err := nde.FeaturizeLetterSplits(s.Train, s.Valid, s.Test)
	if err != nil {
		t.Fatal(err)
	}
	fx.truth = append([]int(nil), dTrain.Y...)
	fx.dirty, _, err = datagen.FlipDatasetLabels(dTrain, 0.15, seed+1)
	if err != nil {
		t.Fatal(err)
	}
	fx.valid, fx.test = dValid, dTest

	hp, err := nde.BuildHiringPipeline(s.Train, s.Data.Jobs, s.Data.Social)
	if err != nil {
		t.Fatal(err)
	}
	if fx.ft, err = hp.WithProvenance(); err != nil {
		t.Fatal(err)
	}
	if fx.validLike, err = hp.FeaturizeValidationLike(s.Valid, s.Data.Jobs, s.Data.Social, hp.Encoder); err != nil {
		t.Fatal(err)
	}
	for v := 0; v < 6; v++ {
		rows := make([]nde.TupleID, 0, 4)
		for r := v * 5; r < v*5+4 && r < hp.TrainRows; r++ {
			rows = append(rows, nde.TupleID{Table: "train", Row: r})
		}
		fx.variants = append(fx.variants, nde.RemovalVariant{
			Name:   fmt.Sprintf("drop-%d", v),
			Remove: rows,
		})
	}
	// one variant that removes every source row — the NaN-sentinel path must
	// stay stable under concurrency too
	all := make([]nde.TupleID, hp.TrainRows)
	for r := range all {
		all[r] = nde.TupleID{Table: "train", Row: r}
	}
	fx.variants = append(fx.variants, nde.RemovalVariant{Name: "everything", Remove: all})

	// serial baselines: workers pinned to 1, cache cold
	nde.ResetNeighborIndexCache()
	if fx.baseShapley, err = nde.KNNShapleyValues(s.Train, s.Valid, 5); err != nil {
		t.Fatal(err)
	}
	if fx.baseWhatIf, err = nde.WhatIfParallel(fx.ft, fx.variants, fx.validLike, 1); err != nil {
		t.Fatal(err)
	}
	if fx.baseCleaning, err = nde.IterativeCleaning(fx.dirty, fx.valid, fx.test, fx.truth, 4, 8); err != nil {
		t.Fatal(err)
	}
	return fx
}

func (fx *stressFixture) checkShapley() error {
	got, err := nde.KNNShapleyValues(fx.trainFrame, fx.validFrame, 5)
	if err != nil {
		return fmt.Errorf("dataset %d shapley: %w", fx.id, err)
	}
	if len(got) != len(fx.baseShapley) {
		return fmt.Errorf("dataset %d shapley: %d scores, want %d", fx.id, len(got), len(fx.baseShapley))
	}
	for i := range got {
		if math.Float64bits(got[i]) != math.Float64bits(fx.baseShapley[i]) {
			return fmt.Errorf("dataset %d shapley: score %d = %v, serial baseline %v", fx.id, i, got[i], fx.baseShapley[i])
		}
	}
	return nil
}

func (fx *stressFixture) checkWhatIf() error {
	got, err := nde.WhatIfParallel(fx.ft, fx.variants, fx.validLike, 0)
	if err != nil {
		return fmt.Errorf("dataset %d what-if: %w", fx.id, err)
	}
	if len(got) != len(fx.baseWhatIf) {
		return fmt.Errorf("dataset %d what-if: %d results, want %d", fx.id, len(got), len(fx.baseWhatIf))
	}
	for i := range got {
		w, b := got[i], fx.baseWhatIf[i]
		if w.Name != b.Name || w.Surviving != b.Surviving ||
			math.Float64bits(w.Metric) != math.Float64bits(b.Metric) {
			return fmt.Errorf("dataset %d what-if: variant %d = %+v, serial baseline %+v", fx.id, i, w, b)
		}
	}
	return nil
}

func (fx *stressFixture) checkCleaning() error {
	got, err := nde.IterativeCleaning(fx.dirty, fx.valid, fx.test, fx.truth, 4, 8)
	if err != nil {
		return fmt.Errorf("dataset %d cleaning: %w", fx.id, err)
	}
	b := fx.baseCleaning
	if got.Strategy != b.Strategy || len(got.Curve) != len(b.Curve) {
		return fmt.Errorf("dataset %d cleaning: curve %d points (%s), want %d (%s)",
			fx.id, len(got.Curve), got.Strategy, len(b.Curve), b.Strategy)
	}
	for i := range got.Curve {
		if got.Curve[i].Cleaned != b.Curve[i].Cleaned ||
			math.Float64bits(got.Curve[i].Accuracy) != math.Float64bits(b.Curve[i].Accuracy) {
			return fmt.Errorf("dataset %d cleaning: point %d = %+v, serial baseline %+v",
				fx.id, i, got.Curve[i], b.Curve[i])
		}
	}
	for i := range got.Final.Y {
		if got.Final.Y[i] != b.Final.Y[i] {
			return fmt.Errorf("dataset %d cleaning: final label %d = %d, serial baseline %d",
				fx.id, i, got.Final.Y[i], b.Final.Y[i])
		}
	}
	return nil
}

// TestStressConcurrentFacade is the gate itself: every goroutine loops over
// every dataset calling all three entry points (starting at a different one
// per goroutine so the interleavings differ), while a churn goroutine
// resets the neighbor-index cache to force concurrent rebuilds.
func TestStressConcurrentFacade(t *testing.T) {
	if testing.Short() {
		t.Skip("stress gate skipped in -short mode")
	}
	nDatasets, goroutines, iters := stressScale()
	fixtures := make([]*stressFixture, nDatasets)
	for d := range fixtures {
		fixtures[d] = newStressFixture(t, d)
	}
	nde.ResetNeighborIndexCache()
	defer nde.ResetNeighborIndexCache()

	errc := make(chan error, goroutines)
	done := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for it := 0; it < iters; it++ {
				for d := range fixtures {
					fx := fixtures[(g+d)%len(fixtures)]
					checks := []func() error{fx.checkShapley, fx.checkWhatIf, fx.checkCleaning}
					for c := 0; c < len(checks); c++ {
						if err := checks[(g+it+c)%len(checks)](); err != nil {
							select {
							case errc <- err:
							default:
							}
							return
						}
					}
				}
			}
		}(g)
	}
	var churn sync.WaitGroup
	churn.Add(1)
	go func() {
		defer churn.Done()
		for {
			select {
			case <-done:
				return
			case <-time.After(5 * time.Millisecond):
				nde.ResetNeighborIndexCache()
			}
		}
	}()
	wg.Wait()
	close(done)
	churn.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}
}
