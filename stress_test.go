package nde_test

// stress_test.go — the race-stress gate: hammer the facade's concurrent
// entry points (kNN-Shapley scoring, what-if removal batches, iterative
// cleaning) from many goroutines over several distinct datasets, under the
// race detector, and assert that every concurrent result is bit-for-bit
// identical to a serial baseline. A cache-churn goroutine resets the shared
// neighbor-index cache throughout, so the singleflight build/evict/reset
// paths are exercised at the same time.
//
// The default scale is small enough for `go test -race ./...`; set
// NDE_STRESS=1 (as `make stress` does) for the heavier sweep.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"net/http/httptest"
	"os"
	"sync"
	"testing"
	"time"

	"nde"
	"nde/internal/datagen"
	"nde/internal/serve"
)

// stressScale returns (datasets, goroutines, iterations per goroutine).
func stressScale() (int, int, int) {
	if os.Getenv("NDE_STRESS") == "1" {
		return 4, 8, 3
	}
	return 2, 4, 2
}

// stressFixture is one dataset's inputs plus serial baselines for every
// entry point under stress.
type stressFixture struct {
	id int

	trainFrame, validFrame *nde.Frame

	dirty, valid, test *nde.Dataset
	truth              []int

	ft        *nde.Featurized
	validLike *nde.Dataset
	variants  []nde.RemovalVariant

	baseShapley  nde.Scores
	baseWhatIf   []nde.WhatIfResult
	baseCleaning *nde.CleaningResult
}

func newStressFixture(t *testing.T, id int) *stressFixture {
	t.Helper()
	fx := &stressFixture{id: id}
	n := 110 + 10*id
	seed := int64(100 + id)
	s := nde.LoadRecommendationLetters(n, seed)
	fx.trainFrame, fx.validFrame = s.Train, s.Valid

	dTrain, dValid, dTest, err := nde.FeaturizeLetterSplits(s.Train, s.Valid, s.Test)
	if err != nil {
		t.Fatal(err)
	}
	fx.truth = append([]int(nil), dTrain.Y...)
	fx.dirty, _, err = datagen.FlipDatasetLabels(dTrain, 0.15, seed+1)
	if err != nil {
		t.Fatal(err)
	}
	fx.valid, fx.test = dValid, dTest

	hp, err := nde.BuildHiringPipeline(s.Train, s.Data.Jobs, s.Data.Social)
	if err != nil {
		t.Fatal(err)
	}
	if fx.ft, err = hp.WithProvenance(); err != nil {
		t.Fatal(err)
	}
	if fx.validLike, err = hp.FeaturizeValidationLike(s.Valid, s.Data.Jobs, s.Data.Social, hp.Encoder); err != nil {
		t.Fatal(err)
	}
	for v := 0; v < 6; v++ {
		rows := make([]nde.TupleID, 0, 4)
		for r := v * 5; r < v*5+4 && r < hp.TrainRows; r++ {
			rows = append(rows, nde.TupleID{Table: "train", Row: r})
		}
		fx.variants = append(fx.variants, nde.RemovalVariant{
			Name:   fmt.Sprintf("drop-%d", v),
			Remove: rows,
		})
	}
	// one variant that removes every source row — the NaN-sentinel path must
	// stay stable under concurrency too
	all := make([]nde.TupleID, hp.TrainRows)
	for r := range all {
		all[r] = nde.TupleID{Table: "train", Row: r}
	}
	fx.variants = append(fx.variants, nde.RemovalVariant{Name: "everything", Remove: all})

	// serial baselines: workers pinned to 1, cache cold
	nde.ResetNeighborIndexCache()
	if fx.baseShapley, err = nde.KNNShapleyValues(s.Train, s.Valid, 5); err != nil {
		t.Fatal(err)
	}
	if fx.baseWhatIf, err = nde.WhatIfParallel(fx.ft, fx.variants, fx.validLike, 1); err != nil {
		t.Fatal(err)
	}
	if fx.baseCleaning, err = nde.IterativeCleaning(fx.dirty, fx.valid, fx.test, fx.truth, 4, 8); err != nil {
		t.Fatal(err)
	}
	return fx
}

func (fx *stressFixture) checkShapley() error {
	got, err := nde.KNNShapleyValues(fx.trainFrame, fx.validFrame, 5)
	if err != nil {
		return fmt.Errorf("dataset %d shapley: %w", fx.id, err)
	}
	if len(got) != len(fx.baseShapley) {
		return fmt.Errorf("dataset %d shapley: %d scores, want %d", fx.id, len(got), len(fx.baseShapley))
	}
	for i := range got {
		if math.Float64bits(got[i]) != math.Float64bits(fx.baseShapley[i]) {
			return fmt.Errorf("dataset %d shapley: score %d = %v, serial baseline %v", fx.id, i, got[i], fx.baseShapley[i])
		}
	}
	return nil
}

func (fx *stressFixture) checkWhatIf() error {
	got, err := nde.WhatIfParallel(fx.ft, fx.variants, fx.validLike, 0)
	if err != nil {
		return fmt.Errorf("dataset %d what-if: %w", fx.id, err)
	}
	if len(got) != len(fx.baseWhatIf) {
		return fmt.Errorf("dataset %d what-if: %d results, want %d", fx.id, len(got), len(fx.baseWhatIf))
	}
	for i := range got {
		w, b := got[i], fx.baseWhatIf[i]
		if w.Name != b.Name || w.Surviving != b.Surviving ||
			math.Float64bits(w.Metric) != math.Float64bits(b.Metric) {
			return fmt.Errorf("dataset %d what-if: variant %d = %+v, serial baseline %+v", fx.id, i, w, b)
		}
	}
	return nil
}

func (fx *stressFixture) checkCleaning() error {
	got, err := nde.IterativeCleaning(fx.dirty, fx.valid, fx.test, fx.truth, 4, 8)
	if err != nil {
		return fmt.Errorf("dataset %d cleaning: %w", fx.id, err)
	}
	b := fx.baseCleaning
	if got.Strategy != b.Strategy || len(got.Curve) != len(b.Curve) {
		return fmt.Errorf("dataset %d cleaning: curve %d points (%s), want %d (%s)",
			fx.id, len(got.Curve), got.Strategy, len(b.Curve), b.Strategy)
	}
	for i := range got.Curve {
		if got.Curve[i].Cleaned != b.Curve[i].Cleaned ||
			math.Float64bits(got.Curve[i].Accuracy) != math.Float64bits(b.Curve[i].Accuracy) {
			return fmt.Errorf("dataset %d cleaning: point %d = %+v, serial baseline %+v",
				fx.id, i, got.Curve[i], b.Curve[i])
		}
	}
	for i := range got.Final.Y {
		if got.Final.Y[i] != b.Final.Y[i] {
			return fmt.Errorf("dataset %d cleaning: final label %d = %d, serial baseline %d",
				fx.id, i, got.Final.Y[i], b.Final.Y[i])
		}
	}
	return nil
}

// serveStressRequest builds a small deterministic two-cluster registration
// body; seedish shifts the geometry so distinct datasets hash to distinct
// content-addressed ids.
func serveStressRequest(train, valid, seedish int) serve.RegisterRequest {
	mk := func(n, off int) *serve.MatrixSpec {
		x := make([][]float64, n)
		y := make([]int, n)
		for i := range x {
			c := i % 2
			b := float64(c*4 + seedish)
			j := float64((i+off)%7) * 0.1
			x[i] = []float64{b + j, b - j, b + 2*j}
			y[i] = c
		}
		return &serve.MatrixSpec{X: x, Y: y}
	}
	return serve.RegisterRequest{Train: mk(train, 0), Valid: mk(valid, 3)}
}

// serveBaseline is one registered dataset's first-response baselines; every
// concurrent response must match them bit-for-bit (JSON encodes float64
// exactly, so equality survives the wire).
type serveBaseline struct {
	id     string
	rows   int
	scores []float64
	whatIf serve.WhatIfResponse
}

// TestStressServerBacked hammers the serving core over real HTTP: every
// goroutine loops registrations (idempotent re-register), sync and async
// importance, and what-ifs across two datasets, comparing each response
// bit-for-bit against the first one, while the cache-churn goroutine forces
// concurrent index rebuilds underneath the score store.
func TestStressServerBacked(t *testing.T) {
	if testing.Short() {
		t.Skip("stress gate skipped in -short mode")
	}
	_, goroutines, iters := stressScale()
	nde.ResetNeighborIndexCache()
	defer nde.ResetNeighborIndexCache()

	core := serve.NewServer(serve.Config{Slots: goroutines + 2, Queue: 4 * goroutines})
	ts := httptest.NewServer(core.Handler())
	defer ts.Close()

	post := func(path string, body, out any) error {
		buf, err := json.Marshal(body)
		if err != nil {
			return err
		}
		resp, err := http.Post(ts.URL+path, "application/json", bytes.NewReader(buf))
		if err != nil {
			return err
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusAccepted {
			var e serve.ErrorResponse
			_ = json.NewDecoder(resp.Body).Decode(&e)
			return fmt.Errorf("%s: status %d class %q: %s", path, resp.StatusCode, e.Class, e.Error)
		}
		return json.NewDecoder(resp.Body).Decode(out)
	}

	variantsFor := func(rows int) []serve.WhatIfVariant {
		all := make([]int, rows)
		for i := range all {
			all[i] = i
		}
		return []serve.WhatIfVariant{
			{Name: "drop-four", Remove: []int{0, 1, 2, 3}},
			{Name: "everything", Remove: all}, // NaN-sentinel path: null metric
		}
	}

	bases := make([]*serveBaseline, 2)
	for d := range bases {
		req := serveStressRequest(60+10*d, 20, d)
		var reg serve.RegisterResponse
		if err := post("/v1/datasets", req, &reg); err != nil {
			t.Fatal(err)
		}
		b := &serveBaseline{id: reg.ID, rows: reg.TrainRows}
		var imp serve.ImportanceResponse
		if err := post("/v1/importance", serve.ImportanceRequest{Dataset: b.id, K: 5}, &imp); err != nil {
			t.Fatal(err)
		}
		b.scores = imp.Scores
		if err := post("/v1/whatif", serve.WhatIfRequest{Dataset: b.id, Variants: variantsFor(b.rows)}, &b.whatIf); err != nil {
			t.Fatal(err)
		}
		bases[d] = b
	}

	checkScores := func(b *serveBaseline, got []float64) error {
		if len(got) != len(b.scores) {
			return fmt.Errorf("dataset %s: %d scores, want %d", b.id, len(got), len(b.scores))
		}
		for i := range got {
			if math.Float64bits(got[i]) != math.Float64bits(b.scores[i]) {
				return fmt.Errorf("dataset %s: score %d = %v, baseline %v", b.id, i, got[i], b.scores[i])
			}
		}
		return nil
	}
	checkImportance := func(b *serveBaseline, async bool) error {
		if !async {
			var imp serve.ImportanceResponse
			if err := post("/v1/importance", serve.ImportanceRequest{Dataset: b.id, K: 5}, &imp); err != nil {
				return err
			}
			return checkScores(b, imp.Scores)
		}
		var acc serve.AsyncAccepted
		if err := post("/v1/importance", serve.ImportanceRequest{Dataset: b.id, K: 5, Async: true}, &acc); err != nil {
			return err
		}
		deadline := time.Now().Add(30 * time.Second)
		for {
			resp, err := http.Get(ts.URL + "/v1/runs/" + acc.Run)
			if err != nil {
				return err
			}
			var poll struct {
				State  string                   `json:"state"`
				Result serve.ImportanceResponse `json:"result"`
				Error  string                   `json:"error"`
			}
			err = json.NewDecoder(resp.Body).Decode(&poll)
			resp.Body.Close()
			if err != nil {
				return err
			}
			switch poll.State {
			case "done":
				return checkScores(b, poll.Result.Scores)
			case "error":
				return fmt.Errorf("run %s failed: %s", acc.Run, poll.Error)
			}
			if time.Now().After(deadline) {
				return fmt.Errorf("run %s still %q after 30s", acc.Run, poll.State)
			}
			time.Sleep(5 * time.Millisecond)
		}
	}
	checkWhatIf := func(b *serveBaseline) error {
		var got serve.WhatIfResponse
		if err := post("/v1/whatif", serve.WhatIfRequest{Dataset: b.id, Variants: variantsFor(b.rows)}, &got); err != nil {
			return err
		}
		if math.Float64bits(got.Baseline) != math.Float64bits(b.whatIf.Baseline) || len(got.Results) != len(b.whatIf.Results) {
			return fmt.Errorf("dataset %s: what-if shape/baseline drifted", b.id)
		}
		for i := range got.Results {
			w, base := got.Results[i], b.whatIf.Results[i]
			if w.Name != base.Name || w.Surviving != base.Surviving ||
				(w.Metric == nil) != (base.Metric == nil) {
				return fmt.Errorf("dataset %s: variant %d = %+v, baseline %+v", b.id, i, w, base)
			}
			if w.Metric != nil && math.Float64bits(*w.Metric) != math.Float64bits(*base.Metric) {
				return fmt.Errorf("dataset %s: variant %d metric %v, baseline %v", b.id, i, *w.Metric, *base.Metric)
			}
		}
		return nil
	}
	checkRegister := func(d int, b *serveBaseline) error {
		var reg serve.RegisterResponse
		if err := post("/v1/datasets", serveStressRequest(60+10*d, 20, d), &reg); err != nil {
			return err
		}
		if reg.ID != b.id {
			return fmt.Errorf("re-register: id %s, want %s (content addressing drifted)", reg.ID, b.id)
		}
		return nil
	}

	errc := make(chan error, goroutines)
	done := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for it := 0; it < iters; it++ {
				for d := range bases {
					b := bases[(g+d)%len(bases)]
					checks := []func() error{
						func() error { return checkRegister((g+d)%len(bases), b) },
						func() error { return checkImportance(b, (g+it)%2 == 1) },
						func() error { return checkWhatIf(b) },
					}
					for c := 0; c < len(checks); c++ {
						if err := checks[(g+it+c)%len(checks)](); err != nil {
							select {
							case errc <- err:
							default:
							}
							return
						}
					}
				}
			}
		}(g)
	}
	var churn sync.WaitGroup
	churn.Add(1)
	go func() {
		defer churn.Done()
		for {
			select {
			case <-done:
				return
			case <-time.After(5 * time.Millisecond):
				nde.ResetNeighborIndexCache()
			}
		}
	}()
	wg.Wait()
	close(done)
	churn.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}
}

// TestStressConcurrentFacade is the gate itself: every goroutine loops over
// every dataset calling all three entry points (starting at a different one
// per goroutine so the interleavings differ), while a churn goroutine
// resets the neighbor-index cache to force concurrent rebuilds.
func TestStressConcurrentFacade(t *testing.T) {
	if testing.Short() {
		t.Skip("stress gate skipped in -short mode")
	}
	nDatasets, goroutines, iters := stressScale()
	fixtures := make([]*stressFixture, nDatasets)
	for d := range fixtures {
		fixtures[d] = newStressFixture(t, d)
	}
	nde.ResetNeighborIndexCache()
	defer nde.ResetNeighborIndexCache()

	errc := make(chan error, goroutines)
	done := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for it := 0; it < iters; it++ {
				for d := range fixtures {
					fx := fixtures[(g+d)%len(fixtures)]
					checks := []func() error{fx.checkShapley, fx.checkWhatIf, fx.checkCleaning}
					for c := 0; c < len(checks); c++ {
						if err := checks[(g+it+c)%len(checks)](); err != nil {
							select {
							case errc <- err:
							default:
							}
							return
						}
					}
				}
			}
		}(g)
	}
	var churn sync.WaitGroup
	churn.Add(1)
	go func() {
		defer churn.Done()
		for {
			select {
			case <-done:
				return
			case <-time.After(5 * time.Millisecond):
				nde.ResetNeighborIndexCache()
			}
		}
	}()
	wg.Wait()
	close(done)
	churn.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}
}
