package nde

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"nde/internal/nderr"
	"nde/internal/obs"
)

// captureLedger installs a fresh in-memory ledger for one test and returns
// a drain function yielding the decoded records (header excluded).
func captureLedger(t *testing.T) func() []obs.LedgerRecord {
	t.Helper()
	var mu sync.Mutex
	var buf strings.Builder
	l := obs.NewLedger(lockedWriter{mu: &mu, w: &buf}, obs.LedgerMeta{Cmd: "telemetry-test"})
	prev := obs.SetLedger(l)
	t.Cleanup(func() {
		obs.SetLedger(prev)
		l.Close()
	})
	return func() []obs.LedgerRecord {
		mu.Lock()
		defer mu.Unlock()
		var recs []obs.LedgerRecord
		sc := bufio.NewScanner(strings.NewReader(buf.String()))
		for sc.Scan() {
			var r obs.LedgerRecord
			if err := json.Unmarshal(sc.Bytes(), &r); err != nil {
				t.Fatalf("corrupt ledger line %q: %v", sc.Text(), err)
			}
			if r.Type == "header" {
				continue
			}
			recs = append(recs, r)
		}
		return recs
	}
}

type lockedWriter struct {
	mu *sync.Mutex
	w  *strings.Builder
}

func (lw lockedWriter) Write(p []byte) (int, error) {
	lw.mu.Lock()
	defer lw.mu.Unlock()
	return lw.w.Write(p)
}

// opsByName indexes op records by operation name.
func opsByName(recs []obs.LedgerRecord) map[string][]obs.LedgerRecord {
	out := map[string][]obs.LedgerRecord{}
	for _, r := range recs {
		if r.Type == "op" {
			out[r.Op] = append(out[r.Op], r)
		}
	}
	return out
}

// Every facade entry point appends exactly one op record per call — the
// successful paths.
func TestLedgerOneRecordPerFacadeCall(t *testing.T) {
	drain := captureLedger(t)

	s := LoadRecommendationLetters(60, 1)
	if _, err := FeaturizeLetters(s.Train); err != nil {
		t.Fatal(err)
	}
	dTrain, dValid, _, err := FeaturizeLetterSplits(s.Train, s.Valid, s.Test)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := EvaluateModel(s.Train, s.Test); err != nil {
		t.Fatal(err)
	}
	if _, _, err := InjectLabelErrors(s.Train, 0.1, 2); err != nil {
		t.Fatal(err)
	}
	if _, err := KNNShapleyValues(s.Train, s.Valid, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := PrettyPrint(s.Train, []int{0, 1}); err != nil {
		t.Fatal(err)
	}
	if _, err := SelfConfidenceScores(dTrain, 3); err != nil {
		t.Fatal(err)
	}
	if _, err := MarginScores(dTrain, 3); err != nil {
		t.Fatal(err)
	}
	if _, err := InfluenceScores(dTrain, dValid); err != nil {
		t.Fatal(err)
	}

	recs := drain()
	byName := opsByName(recs)
	wantOnce := []string{
		// LoadRecommendationLetters delegates to ScenarioFromData; the
		// inner op is the one recorded (one record per call, not two).
		"ScenarioFromData",
		"FeaturizeLetters", "FeaturizeLetterSplits", "EvaluateModel",
		"InjectLabelErrors", "KNNShapleyValues", "PrettyPrint",
		"SelfConfidenceScores", "MarginScores", "InfluenceScores",
	}
	for _, op := range wantOnce {
		if got := len(byName[op]); got != 1 {
			t.Errorf("op %q: %d records, want exactly 1", op, got)
		}
	}
	if len(byName["LoadRecommendationLetters"]) != 0 {
		t.Errorf("delegating wrapper LoadRecommendationLetters recorded its own op")
	}
	for _, r := range recs {
		if r.Type != "op" {
			continue
		}
		if r.Err != "" {
			t.Errorf("op %q: unexpected error class %q on success", r.Op, r.Err)
		}
		if r.MS < 0 {
			t.Errorf("op %q: negative duration %v", r.Op, r.MS)
		}
		if r.Time == "" {
			t.Errorf("op %q: missing timestamp", r.Op)
		}
	}
	if recs := byName["ScenarioFromData"]; len(recs) == 1 && recs[0].Rows != 60 {
		t.Errorf("ScenarioFromData rows = %d, want 60", recs[0].Rows)
	}
}

// Error outcomes are recorded too, tagged with the nderr sentinel class.
func TestLedgerRecordsErrorOutcomes(t *testing.T) {
	s := LoadRecommendationLetters(50, 1)
	drain := captureLedger(t)

	if _, err := FeaturizeLetters(nil); !errors.Is(err, nderr.ErrEmptyInput) {
		t.Fatalf("FeaturizeLetters(nil) err = %v", err)
	}
	if _, err := KNNShapleyValues(s.Train, s.Valid, 10_000); !errors.Is(err, nderr.ErrBadK) {
		t.Fatalf("KNNShapleyValues huge k err = %v", err)
	}
	if _, err := PrettyPrintWithScores(s.Train, []int{0}, Scores{1}); !errors.Is(err, nderr.ErrShapeMismatch) {
		t.Fatalf("PrettyPrintWithScores err = %v", err)
	}
	if _, err := ScenarioFromData(nil, 1); !errors.Is(err, nderr.ErrEmptyInput) {
		t.Fatalf("ScenarioFromData(nil) err = %v", err)
	}

	byName := opsByName(drain())
	for op, wantClass := range map[string]string{
		"FeaturizeLetters":      "empty_input",
		"KNNShapleyValues":      "bad_k",
		"PrettyPrintWithScores": "shape_mismatch",
		"ScenarioFromData":      "empty_input",
	} {
		recs := byName[op]
		if len(recs) != 1 {
			t.Errorf("op %q: %d records, want 1", op, len(recs))
			continue
		}
		if recs[0].Err != wantClass {
			t.Errorf("op %q: error class %q, want %q", op, recs[0].Err, wantClass)
		}
	}
}

// errClass maps the whole nderr family (and foreign errors) correctly.
func TestErrClassMapping(t *testing.T) {
	cases := []struct {
		err  error
		want string
	}{
		{nil, ""},
		{nderr.ErrNonFinite, "non_finite"},
		{nderr.ErrEmptyInput, "empty_input"},
		{nderr.ErrShapeMismatch, "shape_mismatch"},
		{nderr.ErrSingleClass, "single_class"},
		{nderr.ErrBadK, "bad_k"},
		{nderr.ErrDegenerateInput, "degenerate_input"},
		{fmt.Errorf("wrapped: %w", nderr.ErrBadK), "bad_k"},
		{fmt.Errorf("wrapped root: %w", nderr.ErrDegenerateInput), "degenerate_input"},
		{errors.New("io failure"), "error"},
	}
	for _, c := range cases {
		if got := errClass(c.err); got != c.want {
			t.Errorf("errClass(%v) = %q, want %q", c.err, got, c.want)
		}
	}
}

// The KNN-Shapley cache annotation: first call on a fresh geometry misses,
// an identical second call hits.
func TestLedgerCacheAnnotation(t *testing.T) {
	if !obs.Enabled() {
		obs.Enable()
		defer obs.Disable()
	}
	ResetNeighborIndexCache()
	drain := captureLedger(t)
	s := LoadRecommendationLetters(55, 7)
	if _, err := KNNShapleyValues(s.Train, s.Valid, 3); err != nil {
		t.Fatal(err)
	}
	if _, err := KNNShapleyValues(s.Train, s.Valid, 3); err != nil {
		t.Fatal(err)
	}
	recs := opsByName(drain())["KNNShapleyValues"]
	if len(recs) != 2 {
		t.Fatalf("got %d KNNShapleyValues records, want 2", len(recs))
	}
	if recs[0].Cache != "miss" {
		t.Errorf("first call cache = %q, want miss", recs[0].Cache)
	}
	if recs[1].Cache != "hit" {
		t.Errorf("second call cache = %q, want hit", recs[1].Cache)
	}
}

// Toggling obs.Enable mid-run must not disturb ledger recording, and a
// ledger installed mid-run starts recording cleanly (no partial lines).
func TestLedgerMidRunEnableToggle(t *testing.T) {
	drain := captureLedger(t)
	s := LoadRecommendationLetters(40, 1)

	obs.Enable()
	if _, err := FeaturizeLetters(s.Train); err != nil {
		t.Fatal(err)
	}
	obs.Disable()
	if _, err := FeaturizeLetters(s.Valid); err != nil {
		t.Fatal(err)
	}

	recs := opsByName(drain())["FeaturizeLetters"]
	if len(recs) != 2 {
		t.Fatalf("got %d records across an Enable/Disable toggle, want 2", len(recs))
	}
}

// With no ledger installed, the record hooks must not allocate (the
// obs-off contract extends to the facade).
func TestRecordOpHookDisabledZeroAllocations(t *testing.T) {
	prev := obs.SetLedger(nil)
	defer obs.SetLedger(prev)
	var err error
	allocs := testing.AllocsPerRun(200, func() {
		recordOp("X", time.Now(), 10, 2, &err)
	})
	if allocs != 0 {
		t.Errorf("recordOp with no ledger: %v allocs/op, want 0", allocs)
	}
}
