package nde_test

import (
	"fmt"

	"nde"
)

// The Figure-2 workflow in six lines: load, corrupt, rank, clean, compare.
func Example() {
	scenario := nde.LoadRecommendationLetters(200, 42)
	dirty, corrupted, _ := nde.InjectLabelErrors(scenario.Train, 0.1, 7)
	scores, _ := nde.KNNShapleyValues(dirty, scenario.Valid, 5)
	hits := 0
	for _, i := range scores.BottomK(len(corrupted)) {
		if corrupted[i] {
			hits++
		}
	}
	fmt.Printf("injected %d label errors; bottom-%d ranking caught %d\n",
		len(corrupted), len(corrupted), hits)
	// Output:
	// injected 12 label errors; bottom-12 ranking caught 10
}

// Building and inspecting the Figure-3 pipeline.
func ExampleBuildHiringPipeline() {
	scenario := nde.LoadRecommendationLetters(100, 1)
	pipe, _ := nde.BuildHiringPipeline(scenario.Train, scenario.Data.Jobs, scenario.Data.Social)
	ft, _ := pipe.WithProvenance()
	fmt.Printf("pipeline produced %d training rows with provenance\n", ft.Data.Len())
	// Output:
	// pipeline produced 7 training rows with provenance
}

// Symbolically encoding missing values and measuring worst-case loss.
func ExampleEncodeSymbolic() {
	scenario := nde.LoadRecommendationLetters(150, 3)
	train, _, _, _ := nde.FeaturizeLetterSplits(scenario.Train, scenario.Valid, scenario.Test)
	sym, missing, _ := nde.EncodeSymbolic(train, train.Dim()-1, 0.2, nde.MNAR, 5)
	fmt.Printf("%d of %d rating cells are now intervals (%d uncertain)\n",
		len(missing), train.Len(), sym.UncertainCells())
	// Output:
	// 18 of 90 rating cells are now intervals (18 uncertain)
}
